package warehouse

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/obs"
	"streamloader/internal/ops"
	"streamloader/internal/partial"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// ErrInvalidAggQuery tags AggQuery validation failures (unknown function,
// missing field, bad group-by, negative bucket), so callers can answer
// them as client errors rather than evaluation faults.
var ErrInvalidAggQuery = errors.New("warehouse: invalid aggregate query")

// ErrTooManyGroups reports an aggregation whose group cardinality exceeded
// its MaxGroups bound — addressable by the caller (narrow the filter,
// coarsen the bucket, raise the bound), unlike an I/O failure.
var ErrTooManyGroups = errors.New("warehouse: aggregate group cardinality exceeds the bound")

// DefaultAggMaxGroups bounds the group cardinality one Aggregate call may
// produce; AggQuery.MaxGroups overrides it. The bound protects the process
// from a group-by × fine bucketing over a wide history materializing an
// unbounded result — the one way an aggregation, which otherwise touches no
// event slices, could still blow memory.
const DefaultAggMaxGroups = 100_000

// AggQuery is an aggregation pushed down into the warehouse: the usual
// Query filter (Limit is ignored — an aggregate has no page to cap) plus an
// aggregation spec. The query is evaluated as per-shard, per-segment partial
// aggregates merged at the top, never materializing a merged event list; a
// cold segment whose header stats fully cover the filter and grouping is
// answered without opening its event block at all. The partial states come
// from the partial package, so the same query can also be registered as a
// standing view and maintained incrementally (see view.go).
type AggQuery struct {
	Query

	// Func is the aggregation function: COUNT, SUM, AVG, MIN or MAX.
	Func ops.AggFunc
	// Field names the aggregated payload field. Required for SUM/AVG/MIN/
	// MAX, where only events carrying a numeric non-null value of it
	// contribute; optional for COUNT, where a named field counts events
	// whose value for it is present and non-null (matching the streaming
	// COUNT(attr) operator) and an empty field counts every matching event.
	Field string
	// GroupBy lists grouping dimensions: "source" and/or "theme" (the
	// event's primary Theme tag).
	GroupBy []string
	// Bucket, when positive, additionally groups results into fixed-width
	// event-time windows (time.Time.Truncate alignment).
	Bucket time.Duration
	// Window, when positive, restricts the result to the trailing window
	// ending at evaluation time: only buckets that still overlap
	// (now-Window, now] survive, judged on the evaluator's clock. It
	// requires a positive Bucket — expiry is bucket-granular, dropping a
	// whole frame exactly when its end leaves the window, so results stay
	// identical to re-aggregating the surviving buckets from scratch. On a
	// standing view the same rule drops expired frames by construction on
	// the publisher's clock (see view.go).
	Window time.Duration
	// MaxGroups bounds the result cardinality (0 = DefaultAggMaxGroups).
	MaxGroups int
}

// AggRow is one output group of an Aggregate call.
type AggRow struct {
	// Bucket is the window start; the zero time when the query had no
	// bucketing.
	Bucket time.Time
	// Source/Theme carry the group values for the dimensions grouped on,
	// empty otherwise (and for events genuinely lacking the tag).
	Source string
	Theme  string
	// Count is how many events contributed to the aggregate.
	Count int64
	// Value is the aggregate result: the count for COUNT, sum for SUM,
	// sum/count for AVG, and the extrema for MIN/MAX.
	Value float64
}

// aggPlan is a validated AggQuery with the grouping flags resolved.
type aggPlan struct {
	AggQuery
	groupSource, groupTheme bool
	// bareCount marks COUNT with no field: every matching event
	// contributes, which is what makes the cold-header fast path possible.
	bareCount bool
	maxGroups int
}

// plan validates the query and resolves the grouping spec.
func (q AggQuery) plan() (aggPlan, error) {
	p := aggPlan{AggQuery: q}
	fn, err := ops.ParseAggFunc(string(q.Func))
	if err != nil {
		return p, fmt.Errorf("%w: %v", ErrInvalidAggQuery, err)
	}
	p.Func = fn
	if fn != ops.AggCount && q.Field == "" {
		return p, fmt.Errorf("%w: %s needs a field", ErrInvalidAggQuery, fn)
	}
	p.bareCount = fn == ops.AggCount && q.Field == ""
	for _, g := range q.GroupBy {
		switch strings.ToLower(g) {
		case "source":
			p.groupSource = true
		case "theme":
			p.groupTheme = true
		default:
			return p, fmt.Errorf("%w: unknown group-by %q (want source, theme)", ErrInvalidAggQuery, g)
		}
	}
	if q.Bucket < 0 {
		return p, fmt.Errorf("%w: negative bucket %v", ErrInvalidAggQuery, q.Bucket)
	}
	if q.Window < 0 {
		return p, fmt.Errorf("%w: negative window %v", ErrInvalidAggQuery, q.Window)
	}
	if q.Window > 0 && q.Bucket <= 0 {
		return p, fmt.Errorf("%w: window %v needs a bucket (expiry is bucket-granular)", ErrInvalidAggQuery, q.Window)
	}
	p.maxGroups = q.MaxGroups
	if p.maxGroups <= 0 {
		p.maxGroups = DefaultAggMaxGroups
	}
	p.Limit = 0 // aggregates have no page; never let a Limit prune inputs
	return p, nil
}

// windowKeep returns the bucket-survival predicate of a windowed plan at
// evaluation time now: a bucket survives while its end is still inside the
// trailing window. Nil when the plan has no window (everything survives).
func (p *aggPlan) windowKeep(now time.Time) func(start time.Time) bool {
	if p.Window <= 0 {
		return nil
	}
	cutoff := now.Add(-p.Window)
	bucket := p.Bucket
	return func(start time.Time) bool { return start.Add(bucket).After(cutoff) }
}

// windowFrom tightens the plan's From bound to the earliest event time any
// surviving bucket can contain — a conservative pre-filter (one spare bucket
// of slack) that lets scans prune history the keep-predicate would discard
// anyway. The keep-predicate stays the authority on what is emitted.
func (p *aggPlan) windowFrom(now time.Time) {
	if p.Window <= 0 {
		return
	}
	lower := now.Add(-p.Window).Truncate(p.Bucket).Add(-p.Bucket)
	if p.From.IsZero() || p.From.Before(lower) {
		p.From = lower
	}
}

// projection names the event columns this plan's decode path touches, for
// projected v3 chunk reads: the time always (window filtering), geo only
// under a Region, theme/source only when filtered or grouped on, and of the
// payload only the aggregated field. A payload condition reads everything —
// it can reference any field.
func (p *aggPlan) projection() persist.Projection {
	if p.Cond != "" {
		return persist.FullProjection
	}
	proj := persist.Projection{Mask: persist.ColTime}
	if p.Region != nil {
		proj.Mask |= persist.ColGeo
	}
	if len(p.Themes) > 0 || p.groupTheme {
		proj.Mask |= persist.ColTheme
	}
	if len(p.Sources) > 0 || p.groupSource {
		proj.Mask |= persist.ColSource
	}
	if !p.bareCount {
		proj.Field = p.Field
	}
	return proj
}

// contribution resolves whether one event contributes and with what value.
func (p *aggPlan) contribution(t *stt.Tuple) (float64, bool) {
	if p.bareCount {
		return 0, true
	}
	v, ok := t.Get(p.Field)
	if p.Func == ops.AggCount {
		return 0, ok && !v.IsNull()
	}
	if !ok || !v.Kind().Numeric() {
		return 0, false
	}
	return v.AsFloat(), true
}

// keyOf builds the group key (and bucket start) for one event.
func (p *aggPlan) keyOf(t *stt.Tuple) (partial.Key, time.Time) {
	var bs time.Time
	if p.Bucket > 0 {
		bs = t.Time.Truncate(p.Bucket)
	}
	source, theme := "", ""
	if p.groupSource {
		source = t.Source
	}
	if p.groupTheme {
		theme = t.Theme
	}
	return partial.BucketKey(bs, source, theme), bs
}

// accumulate folds one matching event into the group map. It reports false
// when the group cardinality bound is exceeded.
func (p *aggPlan) accumulate(acc map[partial.Key]*partial.State, t *stt.Tuple) bool {
	f, ok := p.contribution(t)
	if !ok {
		return true
	}
	key, bs := p.keyOf(t)
	st := acc[key]
	if st == nil {
		if len(acc) >= p.maxGroups {
			return false
		}
		st = partial.New(bs)
		acc[key] = st
	}
	if p.Func == ops.AggCount {
		st.ObserveCount(1)
	} else {
		st.Observe(f)
	}
	return true
}

// accumulateStore is accumulate targeting a bucketed store: the event files
// under the frame of its own bucket (the zero frame when unbucketed), which
// is what lets retention cuts and window expiry drop whole frames later. It
// reports false when the group cardinality bound is exceeded.
func (p *aggPlan) accumulateStore(st *partial.Store, t *stt.Tuple) bool {
	f, ok := p.contribution(t)
	if !ok {
		return true
	}
	key, bs := p.keyOf(t)
	s := st.Group(key, bs, p.maxGroups)
	if s == nil {
		return false
	}
	if p.Func == ops.AggCount {
		s.ObserveCount(1)
	} else {
		s.Observe(f)
	}
	return true
}

// add folds a header-derived count into the group map (cold fast path).
func (p *aggPlan) add(acc map[partial.Key]*partial.State, bs time.Time, source, theme string, n int64) bool {
	key := partial.BucketKey(time.Time{}, source, theme)
	if p.Bucket > 0 {
		key = partial.BucketKey(bs, source, theme)
	}
	st := acc[key]
	if st == nil {
		if len(acc) >= p.maxGroups {
			return false
		}
		st = partial.New(bs)
		acc[key] = st
	}
	st.ObserveCount(n)
	return true
}

var errAggGroups = fmt.Errorf("%w (narrow the filter, coarsen the bucket, or raise MaxGroups)", ErrTooManyGroups)

// coldHeaderAgg answers one cold segment purely from its in-RAM header
// stats, without opening the event block. It applies only when every live
// event's contribution is fully determined by the header:
//
//   - bare COUNT (a field or numeric aggregate needs payload values);
//   - no Region or Cond (the header has no spatial or payload stats);
//   - the [From, To) window covers every live event, and — under
//     bucketing — the whole live envelope lands in a single bucket;
//   - the source and theme dimensions are not constrained simultaneously
//     (the header has per-source and per-theme counts, never the cross);
//   - a theme group-by needs the primary-theme header stats (files written
//     before that field fall back to reads), with no theme filter on top;
//     a theme filter alone must name exactly one theme, whose ThemeCounts
//     entry is precisely the matchTheme cardinality.
//
// The first return says whether the segment was answered; the second is
// false only on group-cardinality overflow.
func (p *aggPlan) coldHeaderAgg(acc map[partial.Key]*partial.State, cs *coldSegment) (bool, bool) {
	if !p.bareCount || p.Region != nil || p.Cond != "" {
		return false, true
	}
	if !cs.coveredBy(p.From, p.To) {
		return false, true
	}
	var bs time.Time
	if p.Bucket > 0 {
		hb, tb := cs.head.Time.Truncate(p.Bucket), cs.tail.Time.Truncate(p.Bucket)
		if !hb.Equal(tb) {
			return false, true
		}
		bs = hb
	}
	needSource := p.groupSource || len(p.Sources) > 0
	needTheme := p.groupTheme || len(p.Themes) > 0
	switch {
	case needSource && needTheme:
		return false, true
	case p.groupTheme:
		if len(p.Themes) > 0 || cs.primaryThemes == nil {
			return false, true
		}
		named := 0
		for th, n := range cs.primaryThemes {
			named += n
			if !p.add(acc, bs, "", th, int64(n)) {
				return true, false
			}
		}
		if rem := cs.count - named; rem > 0 {
			if !p.add(acc, bs, "", "", int64(rem)) {
				return true, false
			}
		}
	case needTheme:
		if len(p.Themes) != 1 {
			return false, true
		}
		if n := cs.themeCounts[p.Themes[0]]; n > 0 {
			if !p.add(acc, bs, "", "", int64(n)) {
				return true, false
			}
		}
	case needSource:
		named := 0
		for src, n := range cs.sourceCounts {
			named += n
			if len(p.Sources) > 0 && !containsString(p.Sources, src) {
				continue
			}
			group := ""
			if p.groupSource {
				group = src
			}
			if !p.add(acc, bs, group, "", int64(n)) {
				return true, false
			}
		}
		// Events with an empty source are absent from sourceCounts; the
		// remainder is exactly them.
		if rem := cs.count - named; rem > 0 && (len(p.Sources) == 0 || containsString(p.Sources, "")) {
			if !p.add(acc, bs, "", "", int64(rem)) {
				return true, false
			}
		}
	default:
		if !p.add(acc, bs, "", "", int64(cs.count)) {
			return true, false
		}
	}
	return true, true
}

// addStats folds one chunk's field summary into the group map (cold
// chunk-stats fast path). A summary with no contributing events adds no
// group — a row exists only when at least one event contributed — so this
// can be called unconditionally for an answered chunk.
func (p *aggPlan) addStats(acc map[partial.Key]*partial.State, bs time.Time, source, theme string, fs persist.FieldStats) bool {
	contrib := fs.Num
	if p.Func == ops.AggCount {
		contrib = fs.NonNull
	}
	if contrib == 0 {
		return true
	}
	key := partial.BucketKey(time.Time{}, source, theme)
	if p.Bucket > 0 {
		key = partial.BucketKey(bs, source, theme)
	}
	st := acc[key]
	if st == nil {
		if len(acc) >= p.maxGroups {
			return false
		}
		st = partial.New(bs)
		acc[key] = st
	}
	if p.Func == ops.AggCount {
		st.ObserveCount(int64(fs.NonNull))
	} else {
		st.ObserveStats(int64(fs.Num), fs.Sum, fs.Min, fs.Max)
	}
	return true
}

// coldChunkAgg extends the header fast path one level down: a v2 cold
// segment the header could not answer whole is walked chunk by chunk, and
// every chunk whose sparse-index stats fully determine its contribution is
// folded without being decoded. A chunk is stats-answerable when it is
// wholly live (no retention skip inside it), its [min, max] time envelope
// lands inside the query window and — under bucketing — in one bucket, and
// the filter/grouping can be resolved from the chunk's count maps: a bare
// COUNT folds per-source or per-theme counts exactly like the header path;
// a field aggregate needs every chunk event to pass the filter and a
// uniform group key, and then folds the chunk's per-field Num/Sum/Min/Max
// frame. A chunk the filter provably rejects outright (no matching source
// or theme present) is skipped without a read — also a stats answer. The
// chunks in between decode exactly as before, in contiguous runs through
// the chunk cache, preserving fold order so results are identical to the
// decode-everything path. Returns handled=false when the per-chunk walk
// does not apply at all (v1 file, Region or Cond present) and the caller
// must fall back to the full window read.
func (p *aggPlan) coldChunkAgg(acc map[partial.Key]*partial.State, cs *coldSegment, sc *segScan) (bool, error) {
	info := cs.info
	if cs.loaded != nil || p.Region != nil || p.Cond != "" ||
		info.NumChunks() == 0 || info.Sparse[0].Stats == nil {
		return false, nil
	}
	lo, hi := info.WindowPositions(p.From, p.To)
	if lo < cs.skip {
		lo = cs.skip
	}
	if lo >= hi {
		return true, nil
	}
	proj := p.projection()
	// flush decodes one pending run of event ordinals — only the plan's
	// projected columns on v3 files — and filters exactly.
	flush := func(a, b int) error {
		if a >= b {
			return nil
		}
		t0 := cs.readHist.Start()
		pes, rs, err := info.ReadRangeProjected(cs.cache, a, b, proj)
		cs.readHist.Since(t0)
		if err != nil {
			return err
		}
		sc.addRead(rs)
		for _, pe := range pes {
			ev := Event{Seq: pe.Seq, Tuple: pe.Tuple}
			match, err := matchEvent(ev, p.Query, nil) // Cond is empty here
			if err != nil {
				return err
			}
			if match && !p.accumulate(acc, ev.Tuple) {
				return errAggGroups
			}
		}
		return nil
	}
	runStart := -1
	for k := 0; k < info.NumChunks(); k++ {
		start, end := info.ChunkRange(k)
		if end <= lo {
			continue
		}
		if start >= hi {
			break
		}
		answered, ok := p.chunkAgg(acc, cs, k, start, end)
		if !ok {
			return false, errAggGroups
		}
		if answered {
			if runStart >= 0 {
				if err := flush(runStart, start); err != nil {
					return false, err
				}
				runStart = -1
			}
			sc.chunkStats++
			continue
		}
		if runStart < 0 {
			runStart = max(start, lo)
		}
	}
	if runStart >= 0 {
		if err := flush(runStart, hi); err != nil {
			return false, err
		}
	}
	return true, nil
}

// chunkAgg tries to fold chunk k (event ordinals [start, end)) from its
// stats alone. The first return says whether the chunk was answered — which
// includes proving it contributes nothing — and the second is false only on
// group-cardinality overflow.
func (p *aggPlan) chunkAgg(acc map[partial.Key]*partial.State, cs *coldSegment, k, start, end int) (bool, bool) {
	st := cs.info.Sparse[k].Stats
	if st == nil || start < cs.skip {
		return false, true
	}
	minTime := cs.info.Sparse[k].Time
	if !p.From.IsZero() && minTime.Before(p.From) {
		return false, true
	}
	if !p.To.IsZero() && !st.MaxTime.Before(p.To) {
		return false, true
	}
	var bs time.Time
	if p.Bucket > 0 {
		hb, tb := minTime.Truncate(p.Bucket), st.MaxTime.Truncate(p.Bucket)
		if !hb.Equal(tb) {
			return false, true
		}
		bs = hb
	}
	n := end - start

	// Resolve the source filter against the chunk: srcMatched is the exact
	// number of chunk events passing it (always computable — per-source
	// counts partition the chunk).
	srcMatched, srcNamed := n, 0
	if len(p.Sources) > 0 {
		srcMatched = 0
		for src, c := range st.SourceCounts {
			srcNamed += c
			if containsString(p.Sources, src) {
				srcMatched += c
			}
		}
		if containsString(p.Sources, "") {
			srcMatched += n - srcNamed
		}
		if srcMatched == 0 {
			return true, true // provably no match: skip without a read
		}
	}
	srcFull := srcMatched == n

	// Resolve the theme filter: thMatched is exact for a single-theme
	// filter, and for several themes only the all-or-nothing cases resolve
	// (matchTheme counts overlap, so a partial union is unknowable).
	thMatched := n
	if len(p.Themes) > 0 {
		allZero, full := true, false
		for _, th := range p.Themes {
			c := st.ThemeCounts[th]
			if c > 0 {
				allZero = false
			}
			if c == n {
				full = true
			}
		}
		switch {
		case allZero:
			return true, true // provably no match
		case full:
			thMatched = n
		case len(p.Themes) == 1:
			thMatched = st.ThemeCounts[p.Themes[0]]
		default:
			return false, true
		}
	}
	thFull := thMatched == n

	if p.bareCount {
		switch {
		case p.groupSource && p.groupTheme:
			return false, true // no source×theme cross in the stats
		case p.groupSource:
			if !thFull {
				return false, true
			}
			for src, c := range st.SourceCounts {
				if len(p.Sources) > 0 && !containsString(p.Sources, src) {
					continue
				}
				if !p.add(acc, bs, src, "", int64(c)) {
					return true, false
				}
			}
			if rem := n - sumCounts(st.SourceCounts); rem > 0 && (len(p.Sources) == 0 || containsString(p.Sources, "")) {
				if !p.add(acc, bs, "", "", int64(rem)) {
					return true, false
				}
			}
			return true, true
		case p.groupTheme:
			if !srcFull || !thFull {
				return false, true
			}
			named := 0
			for th, c := range st.PrimaryThemeCounts {
				named += c
				if !p.add(acc, bs, "", th, int64(c)) {
					return true, false
				}
			}
			if rem := n - named; rem > 0 {
				if !p.add(acc, bs, "", "", int64(rem)) {
					return true, false
				}
			}
			return true, true
		default:
			// No grouping: one of the filters must be exactly resolvable.
			var m int
			switch {
			case srcFull:
				m = thMatched
			case thFull:
				m = srcMatched
			default:
				return false, true
			}
			if m > 0 && !p.add(acc, bs, "", "", int64(m)) {
				return true, false
			}
			return true, true
		}
	}

	// Field aggregates: the whole chunk must contribute (any filtered-out
	// event would poison the pre-aggregated frame) under a uniform group key,
	// and the chunk's numeric frame must be total — NaN/Inf values cannot
	// ride in the stats, so their chunks decode.
	if !srcFull || !thFull {
		return false, true
	}
	if p.Func != ops.AggCount && st.Fields[p.Field].NonFinite > 0 {
		return false, true
	}
	source, theme := "", ""
	if p.groupSource {
		src, uniform := uniformKey(st.SourceCounts, n)
		if !uniform {
			return false, true
		}
		source = src
	}
	if p.groupTheme {
		th, uniform := uniformKey(st.PrimaryThemeCounts, n)
		if !uniform {
			return false, true
		}
		theme = th
	}
	if !p.addStats(acc, bs, source, theme, st.Fields[p.Field]) {
		return true, false
	}
	return true, true
}

// sumCounts totals a count map.
func sumCounts(m map[string]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

// uniformKey reports whether every one of n events carries the same key in
// a partitioning count map — one entry covering all n, or no entry at all
// (every event carries the empty key).
func uniformKey(m map[string]int, n int) (string, bool) {
	if len(m) == 0 {
		return "", true
	}
	if len(m) == 1 {
		for k, c := range m {
			if c == n {
				return k, true
			}
		}
	}
	return "", false
}

// rowsFromPartials builds the sorted output rows from a merged group map.
// Shared by the one-shot Aggregate path and materialized-view snapshots, so
// both produce identical rows for identical partials.
func (p *aggPlan) rowsFromPartials(merged map[partial.Key]*partial.State) []AggRow {
	rows := make([]AggRow, 0, len(merged))
	for k, st := range merged {
		rows = append(rows, AggRow{
			Bucket: st.Bucket,
			Source: k.Source,
			Theme:  k.Theme,
			Count:  st.Count,
			Value:  st.Value(p.Func),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if !a.Bucket.Equal(b.Bucket) {
			return a.Bucket.Before(b.Bucket)
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Theme < b.Theme
	})
	return rows
}

// Aggregate evaluates an aggregation over the store without materializing a
// merged event list: each shard folds its matching events (or, for covered
// cold segments, its header stats) into partial aggregates, and the partials
// merge at the top. Rows come back sorted by (bucket, source, theme). A
// group appears only when at least one event contributed to it.
func (w *Warehouse) Aggregate(q AggQuery) ([]AggRow, QueryStats, error) {
	rows, qs, _, err := w.aggregate(q, nil)
	return rows, qs, err
}

// AggregateTraced is Aggregate recording, when tr is non-nil, one span per
// shard visited plus the top-level merge span — the ?trace=1 explain path.
func (w *Warehouse) AggregateTraced(q AggQuery, tr *obs.Trace) ([]AggRow, QueryStats, error) {
	rows, qs, _, err := w.aggregate(q, tr)
	return rows, qs, err
}

// aggregate additionally reports the group count before row building, for
// telemetry-minded callers and tests.
func (w *Warehouse) aggregate(q AggQuery, tr *obs.Trace) ([]AggRow, QueryStats, int, error) {
	t0 := w.met.aggregate.Start()
	defer w.met.aggregate.Since(t0)
	var qs QueryStats
	p, err := q.plan()
	if err != nil {
		return nil, qs, 0, err
	}
	now := w.now()
	p.windowFrom(now)
	shards := w.routedShards(p.Query)
	parts := make([]map[partial.Key]*partial.State, len(shards))
	scans := make([]segScan, len(shards))
	errs := make([]error, len(shards))
	forEachShard(shards, func(i int, s *shard) {
		sp := shardSpan(tr, s)
		parts[i], scans[i], errs[i] = s.aggQ(&p)
		endShardSpan(sp, scans[i], len(parts[i]))
	})
	for _, sc := range scans {
		qs.SegmentsScanned += sc.scanned
		qs.SegmentsPruned += sc.pruned
		qs.ColdCacheHits += sc.cacheHits
		qs.ColdCacheMisses += sc.cacheMisses
		qs.ColdHeaderOnly += sc.headerOnly
		qs.ColdChunkStats += sc.chunkStats
		qs.ColdColumnsSkipped += sc.columnsSkipped
		qs.ColdBytesDecoded += sc.bytesDecoded
	}
	if qs.ColdChunkStats > 0 {
		w.chunkStatsHits.Add(uint64(qs.ColdChunkStats))
	}
	w.columnsSkipped.Add(uint64(qs.ColdColumnsSkipped))
	for _, err := range errs {
		if err != nil {
			return nil, qs, 0, err
		}
	}
	// Merge in shard order, so equal-key float partials combine in a
	// deterministic order run to run. The per-shard maps are throwaway, so
	// the merge may take ownership of their states (no clone).
	msp := tr.Start("merge")
	merged := map[partial.Key]*partial.State{}
	for _, part := range parts {
		if !partial.Merge(merged, part, p.maxGroups, false) {
			msp.End()
			return nil, qs, 0, errAggGroups
		}
	}
	if keep := p.windowKeep(now); keep != nil {
		for k, st := range merged {
			if !keep(st.Bucket) {
				delete(merged, k)
			}
		}
	}
	msp.SetInt("groups", int64(len(merged)))
	msp.End()
	return p.rowsFromPartials(merged), qs, len(merged), nil
}

// aggQ folds this shard's matching events into per-group partials under the
// shard read lock; see aggLocked for the scan itself.
func (s *shard) aggQ(p *aggPlan) (map[partial.Key]*partial.State, segScan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.aggLocked(p)
}

// aggLocked folds this shard's matching events into per-group partials. Cold
// segments are answered from header stats when coldHeaderAgg's coverage
// rules hold; otherwise only their window-overlapping chunks are read back
// (through the chunk cache) and filtered exactly, and hot segments iterate
// their cheapest candidate index. No event list is built, sorted or merged.
// The caller holds the shard lock (read suffices; view backfill calls it
// under the write lock so the scan and the tap attach are one atomic step).
func (s *shard) aggLocked(p *aggPlan) (map[partial.Key]*partial.State, segScan, error) {
	var sc segScan
	acc := map[partial.Key]*partial.State{}
	conds := map[*stt.Schema]*expr.Compiled{}
	for _, cs := range s.cold {
		if cs.prunedBy(p.From, p.To) {
			sc.pruned++
			continue
		}
		sc.scanned++
		answered, ok := p.coldHeaderAgg(acc, cs)
		if answered {
			if !ok {
				return nil, sc, errAggGroups
			}
			sc.headerOnly++
			continue
		}
		handled, err := p.coldChunkAgg(acc, cs, &sc)
		if err != nil {
			return nil, sc, err
		}
		if handled {
			continue
		}
		evs, rs, err := cs.readWindowProjected(p.From, p.To, p.projection())
		if err != nil {
			return nil, sc, err
		}
		sc.addRead(rs)
		for _, ev := range evs {
			match, err := matchEvent(ev, p.Query, conds)
			if err != nil {
				return nil, sc, err
			}
			if match && !p.accumulate(acc, ev.Tuple) {
				return nil, sc, errAggGroups
			}
		}
	}
	for _, seg := range s.segs {
		if seg.prunedBy(p.From, p.To) {
			sc.pruned++
			continue
		}
		sc.scanned++
		for _, ord := range seg.candidateSet(p.Query) {
			ev := seg.events[ord]
			match, err := matchEvent(ev, p.Query, conds)
			if err != nil {
				return nil, sc, err
			}
			if match && !p.accumulate(acc, ev.Tuple) {
				return nil, sc, errAggGroups
			}
		}
	}
	return acc, sc, nil
}
