package warehouse

import (
	"fmt"
	"sort"
	"sync"

	"streamloader/internal/expr"
	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// shard is one lock-and-index partition of the warehouse. Events are routed
// to shards by source hash, so a sensor's per-source segment stays entirely
// shard-local and producers of distinct sources never contend.
type shard struct {
	mu     sync.RWMutex
	events []Event

	// timeIndex: events sorted by event time (ordinal into events).
	// Maintained sorted on the fly; appends are near-ordered so insertion
	// position is found by scanning from the end.
	byTime []int
	// spatial grid -> event ordinals.
	byCell map[geo.Cell][]int
	// theme -> event ordinals.
	byTheme map[string][]int
	// source -> event ordinals.
	bySource map[string][]int
}

func newShard() *shard {
	return &shard{
		byCell:   map[geo.Cell][]int{},
		byTheme:  map[string][]int{},
		bySource: map[string][]int{},
	}
}

// appendLocked stores one event. Caller holds the write lock.
func (s *shard) appendLocked(ev Event) {
	t := ev.Tuple
	ord := len(s.events)
	s.events = append(s.events, ev)

	// Insert into the time index, keeping it sorted. Appends usually come
	// in near time order, so probe a few slots from the end; when the event
	// is far out of order (skewed producers sharing a shard), fall back to
	// binary search rather than scanning the whole index.
	pos := len(s.byTime)
	for probes := 0; pos > 0 && s.events[s.byTime[pos-1]].Tuple.Time.After(t.Time); probes++ {
		if probes == 8 {
			pos = sort.Search(pos, func(i int) bool {
				return s.events[s.byTime[i]].Tuple.Time.After(t.Time)
			})
			break
		}
		pos--
	}
	s.byTime = append(s.byTime, 0)
	copy(s.byTime[pos+1:], s.byTime[pos:])
	s.byTime[pos] = ord

	s.indexLocked(t, ord)
}

// indexLocked adds the secondary-index entries for the event at ord.
func (s *shard) indexLocked(t *stt.Tuple, ord int) {
	cell := geo.CellOf(geo.Point{Lat: t.Lat, Lon: t.Lon}, gridCellDeg)
	s.byCell[cell] = append(s.byCell[cell], ord)
	if t.Theme != "" {
		s.byTheme[t.Theme] = append(s.byTheme[t.Theme], ord)
	}
	for _, theme := range t.Schema.Themes {
		if theme != t.Theme {
			s.byTheme[theme] = append(s.byTheme[theme], ord)
		}
	}
	if t.Source != "" {
		s.bySource[t.Source] = append(s.bySource[t.Source], ord)
	}
}

// dropOldestLocked evicts the n oldest events (by the time index) and
// rebuilds all indexes. Caller holds the write lock.
func (s *shard) dropOldestLocked(n int) {
	if n <= 0 {
		return
	}
	if n >= len(s.byTime) {
		n = len(s.byTime)
	}
	survivors := make([]Event, 0, len(s.byTime)-n)
	for _, ord := range s.byTime[n:] {
		survivors = append(survivors, s.events[ord])
	}
	s.events = s.events[:0]
	s.byTime = s.byTime[:0]
	s.byCell = map[geo.Cell][]int{}
	s.byTheme = map[string][]int{}
	s.bySource = map[string][]int{}
	for i, ev := range survivors {
		s.events = append(s.events, ev)
		s.byTime = append(s.byTime, i) // survivors come out time-sorted
		s.indexLocked(ev.Tuple, i)
	}
}

// candidateSet picks the cheapest index for the query and returns candidate
// ordinals. Caller holds the read lock.
func (s *shard) candidateSet(q Query) []int {
	best := []int(nil)
	bestN := len(s.events) + 1

	consider := func(ords []int) {
		if len(ords) < bestN {
			best, bestN = ords, len(ords)
		}
	}
	if len(q.Themes) > 0 {
		var merged []int
		for _, th := range q.Themes {
			merged = append(merged, s.byTheme[th]...)
		}
		sort.Ints(merged)
		merged = dedupeInts(merged)
		consider(merged)
	}
	if len(q.Sources) > 0 {
		var merged []int
		for _, src := range q.Sources {
			merged = append(merged, s.bySource[src]...)
		}
		sort.Ints(merged)
		merged = dedupeInts(merged)
		consider(merged)
	}
	if q.Region != nil {
		minCell := geo.CellOf(q.Region.Min, gridCellDeg)
		maxCell := geo.CellOf(q.Region.Max, gridCellDeg)
		nCells := (maxCell.X - minCell.X + 1) * (maxCell.Y - minCell.Y + 1)
		// Only use the grid when the region is small enough to enumerate.
		if nCells > 0 && nCells <= 10000 {
			var merged []int
			for x := minCell.X; x <= maxCell.X; x++ {
				for y := minCell.Y; y <= maxCell.Y; y++ {
					merged = append(merged, s.byCell[geo.Cell{X: x, Y: y}]...)
				}
			}
			sort.Ints(merged)
			consider(merged)
		}
	}
	if !q.From.IsZero() || !q.To.IsZero() {
		// Narrow the time index by binary search.
		lo, hi := 0, len(s.byTime)
		if !q.From.IsZero() {
			lo = sort.Search(len(s.byTime), func(i int) bool {
				return !s.events[s.byTime[i]].Tuple.Time.Before(q.From)
			})
		}
		if !q.To.IsZero() {
			hi = sort.Search(len(s.byTime), func(i int) bool {
				return !s.events[s.byTime[i]].Tuple.Time.Before(q.To)
			})
		}
		if hi < lo {
			hi = lo
		}
		consider(s.byTime[lo:hi])
	}
	if best == nil {
		return s.byTime
	}
	return best
}

func dedupeInts(s []int) []int {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// selectQ evaluates the query against this shard, returning events in
// (event time, Seq) order, capped at q.Limit when set.
func (s *shard) selectQ(q Query) ([]Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	conds := map[*stt.Schema]*expr.Compiled{}
	var out []Event
	for _, ord := range s.candidateSet(q) {
		ev := s.events[ord]
		t := ev.Tuple
		if !q.From.IsZero() && t.Time.Before(q.From) {
			continue
		}
		if !q.To.IsZero() && !t.Time.Before(q.To) {
			continue
		}
		if q.Region != nil && !q.Region.Contains(geo.Point{Lat: t.Lat, Lon: t.Lon}) {
			continue
		}
		if len(q.Themes) > 0 && !matchTheme(t, q.Themes) {
			continue
		}
		if len(q.Sources) > 0 && !containsString(q.Sources, t.Source) {
			continue
		}
		if q.Cond != "" {
			c, ok := conds[t.Schema]
			if !ok {
				compiled, err := expr.CompileBool(q.Cond, expr.Env{Schema: t.Schema})
				if err != nil {
					// The condition does not type-check against this event's
					// schema: it cannot match events of this shape.
					conds[t.Schema] = nil
					continue
				}
				c = compiled
				conds[t.Schema] = c
			}
			if c == nil {
				continue
			}
			ok2, err := c.EvalBool(expr.Scope{Tuple: t})
			if err != nil {
				return nil, fmt.Errorf("warehouse: evaluating %q: %w", q.Cond, err)
			}
			if !ok2 {
				continue
			}
		}
		out = append(out, ev)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Tuple.Time.Equal(out[j].Tuple.Time) {
			return out[i].Tuple.Time.Before(out[j].Tuple.Time)
		}
		return out[i].Seq < out[j].Seq
	})
	// The globally-earliest Limit events are contained in the union of each
	// shard's earliest Limit matches, so capping here is safe and keeps the
	// merge cost bounded.
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

// stats folds this shard's contribution into st under the shard's own
// read lock; st itself is only touched by the single calling goroutine.
func (s *shard) stats(st *Stats) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st.Events += len(s.events)
	st.Sources += len(s.bySource) // sources are shard-local, so sums are exact
	for theme, ords := range s.byTheme {
		st.Themes[theme] += len(ords)
	}
	if len(s.byTime) > 0 {
		earliest := s.events[s.byTime[0]].Tuple.Time
		latest := s.events[s.byTime[len(s.byTime)-1]].Tuple.Time
		if st.Earliest.IsZero() || earliest.Before(st.Earliest) {
			st.Earliest = earliest
		}
		if st.Latest.IsZero() || latest.After(st.Latest) {
			st.Latest = latest
		}
	}
}

func matchTheme(t *stt.Tuple, themes []string) bool {
	for _, want := range themes {
		if t.Theme == want || t.Schema.HasTheme(want) {
			return true
		}
	}
	return false
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
