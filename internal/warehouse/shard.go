package warehouse

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/geo"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// segLimits bound the active segments of a shard: a segment rotates once it
// holds maxEvents events or its time envelope covers maxSpan.
type segLimits struct {
	maxEvents int
	maxSpan   time.Duration
}

// shard is one lock partition of the warehouse. Events are routed to shards
// by source hash, so a sensor's stream stays entirely shard-local and
// producers of distinct sources never contend. Inside the shard, events live
// in time-partitioned segments: an in-order "hot" segment absorbs the
// advancing stream and rotates on the segLimits bounds, while stragglers
// older than the sealed history go to a side "ooo" segment so they never
// stretch a sealed envelope.
type shard struct {
	mu  sync.RWMutex
	lim segLimits

	// segs holds every segment, sealed and active, in creation order.
	segs []*segment
	// hot is the active in-order segment (nil until the next append).
	hot *segment
	// ooo is the active out-of-order side segment for stragglers.
	ooo *segment
	// sealBound is the highest event time covered by sealed in-order
	// segments; events older than it are stragglers and go to ooo.
	sealBound time.Time

	// count is the live event total across segments, cold included.
	count int
	// seqHi is the highest warehouse seq ever appended to (or recovered
	// into) this shard; view checkpoints record it so a resume can fold
	// only the events a checkpoint has not seen.
	seqHi uint64
	// sources tracks live events per source, so Stats can count distinct
	// sources without unioning per-segment indexes.
	sources map[string]int

	// Durable-mode state; wal is nil for a pure in-memory warehouse.
	// wal logs every append before it becomes visible; cold holds the
	// segments spilled to disk (oldest first); dir is the shard's data
	// directory; nextSegGen numbers the next spill file; hotSegments
	// bounds the sealed in-memory segments before spill kicks in.
	wal         *persist.WAL
	cold        []*coldSegment
	dir         string
	nextSegGen  int
	hotSegments int
	// walFiles carries the surviving WAL files from recovery to OpenWAL;
	// cleared once the WAL takes ownership.
	walFiles []persist.WALFileInfo

	// idx is this shard's position in Warehouse.shards, so tap consumers
	// can address their per-shard state without a map lookup.
	idx int
	// taps are the post-commit consumers (see tap.go), fired in attachment
	// order under the write lock after WAL write + visibility.
	taps []tapConsumer
	// tapScratch backs the one-event slice Append dispatches with, so the
	// single-event hot path allocates nothing for the tap. Cleared after
	// each dispatch so it never retains a tuple.
	tapScratch [1]Event
}

// segScan counts how segment pruning — and, for cold segments, the chunk
// cache, projected column decode, and the aggregate header and chunk-stats
// fast paths — served one shard-local query.
type segScan struct {
	scanned, pruned        int
	cacheHits, cacheMisses int
	headerOnly             int
	chunkStats             int
	columnsSkipped         int
	bytesDecoded           int64
}

// addRead folds one cold read's stats into the scan.
func (sc *segScan) addRead(rs persist.ReadStats) {
	sc.cacheHits += rs.CacheHits
	sc.cacheMisses += rs.CacheMisses
	sc.columnsSkipped += rs.ColumnsSkipped
	sc.bytesDecoded += rs.BytesDecoded
}

// condCache caches per-schema compilations of a query's Cond across the
// segments one shard-local scan visits.
type condCache = map[*stt.Schema]*expr.Compiled

func newShard(lim segLimits) *shard {
	return &shard{lim: lim, sources: map[string]int{}}
}

// ErrCondEval tags a payload-condition runtime evaluation failure: the
// query's Cond, not the store, is at fault, so HTTP callers can answer it
// as a client error rather than a server one.
var ErrCondEval = errors.New("warehouse: condition evaluation failed")

// appendLocked stores one event, routing it to the hot or out-of-order
// segment and rotating the target when it fills. Caller holds the write
// lock.
func (s *shard) appendLocked(ev Event) {
	t := ev.Tuple
	straggler := !s.sealBound.IsZero() && t.Time.Before(s.sealBound)
	seg := s.hot
	if straggler {
		seg = s.ooo
	}
	if seg == nil {
		seg = newSegment()
		s.segs = append(s.segs, seg)
		if straggler {
			s.ooo = seg
		} else {
			s.hot = seg
		}
	}
	seg.append(ev)
	s.count++
	if ev.Seq > s.seqHi {
		s.seqHi = ev.Seq
	}
	if t.Source != "" {
		s.sources[t.Source]++
	}
	if seg.len() >= s.lim.maxEvents || seg.maxTime.Sub(seg.minTime) >= s.lim.maxSpan {
		s.sealLocked(seg)
	}
}

// sealLocked retires an active segment; the next append in its role starts a
// fresh one. Sealing the hot segment advances the straggler boundary.
func (s *shard) sealLocked(seg *segment) {
	switch seg {
	case s.hot:
		s.hot = nil
		if seg.maxTime.After(s.sealBound) {
			s.sealBound = seg.maxTime
		}
	case s.ooo:
		s.ooo = nil
	}
}

// applyDropsLocked executes a compaction verdict: drops[seg] oldest events
// leave each in-memory segment, coldDrops[cs] oldest live events leave
// each spilled segment. Fully-consumed segments are dropped whole — an
// in-memory unlink or a single file delete, no index rebuilt — and only
// boundary segments pay a trim (in-memory rebuild, or a logical skip for
// cold files). It returns how many segments were dropped whole and how
// many were trimmed. Caller holds the write lock; w takes the disk-byte
// accounting.
func (s *shard) applyDropsLocked(w *Warehouse, drops map[*segment]int, coldDrops map[*coldSegment]int) (wholeDrops, trims int) {
	keptCold := s.cold[:0]
	for _, cs := range s.cold {
		n := coldDrops[cs]
		switch {
		case n <= 0:
			keptCold = append(keptCold, cs)
		case n >= cs.count:
			s.dropSourceCountsLocked(cs.sourceCounts)
			s.count -= cs.count
			w.coldBytes.Add(-cs.info.Bytes)
			_ = cs.info.Remove() // a failed delete is re-reaped at next Open
			cs.cache.Invalidate(cs.info.Path)
			wholeDrops++
		default:
			// The compaction walk loaded the segment to find the cutoff;
			// settle per-source counts from the dropped prefix and record
			// the skip. The file stays as-is.
			for _, ev := range cs.dropPrefix(n) {
				if src := ev.Tuple.Source; src != "" {
					if s.sources[src]--; s.sources[src] == 0 {
						delete(s.sources, src)
					}
				}
			}
			cs.unload()
			s.count -= n
			keptCold = append(keptCold, cs)
			trims++
		}
	}
	for i := len(keptCold); i < len(s.cold); i++ {
		s.cold[i] = nil
	}
	s.cold = keptCold

	kept := s.segs[:0]
	for _, seg := range s.segs {
		n := drops[seg]
		switch {
		case n <= 0:
			kept = append(kept, seg)
		case n >= seg.len():
			s.dropSourcesLocked(seg.bySource)
			s.count -= seg.len()
			if seg == s.hot {
				s.hot = nil
			}
			if seg == s.ooo {
				s.ooo = nil
			}
			wholeDrops++
		default:
			for _, ev := range seg.trimOldest(n) {
				if src := ev.Tuple.Source; src != "" {
					if s.sources[src]--; s.sources[src] == 0 {
						delete(s.sources, src)
					}
				}
			}
			s.count -= n
			kept = append(kept, seg)
			trims++
		}
	}
	for i := len(kept); i < len(s.segs); i++ {
		s.segs[i] = nil
	}
	s.segs = kept
	return wholeDrops, trims
}

// dropSourcesLocked settles the per-source counts for a whole dropped
// segment.
func (s *shard) dropSourcesLocked(bySource map[string][]int) {
	for src, ords := range bySource {
		if s.sources[src] -= len(ords); s.sources[src] <= 0 {
			delete(s.sources, src)
		}
	}
}

// dropSourceCountsLocked is dropSourcesLocked for a cold segment's
// count-valued source map.
func (s *shard) dropSourceCountsLocked(counts map[string]int) {
	for src, n := range counts {
		if s.sources[src] -= n; s.sources[src] <= 0 {
			delete(s.sources, src)
		}
	}
}

// minLiveSeqLocked is the smallest warehouse seq still held in memory by
// this shard; every WAL record below it is durable elsewhere (spilled or
// evicted), so log files wholly below it can be checkpointed away.
func (s *shard) minLiveSeqLocked() uint64 {
	min := ^uint64(0)
	for _, seg := range s.segs {
		if seg.len() > 0 && seg.minSeq < min {
			min = seg.minSeq
		}
	}
	return min
}

// maybeSpillLocked hands the oldest sealed in-memory segments to the
// background spiller until the segments not yet queued are back under the
// hot-segment budget. The file writes happen on the spill worker, outside
// this lock; until each swap lands the segment stays readable in memory.
// Caller holds the write lock.
func (s *shard) maybeSpillLocked(w *Warehouse) {
	if s.wal == nil || s.hotSegments <= 0 || w.spill == nil {
		return
	}
	resident := 0
	for _, seg := range s.segs {
		if seg != s.hot && seg != s.ooo && seg.len() > 0 && !seg.spilling {
			resident++
		}
	}
	for _, seg := range s.segs {
		if resident <= s.hotSegments {
			return
		}
		if seg == s.hot || seg == s.ooo || seg.len() == 0 || seg.spilling {
			continue
		}
		seg.spilling = true
		w.spill.enqueue(s, seg)
		resident--
	}
}

// containsSegLocked reports whether seg is still one of the shard's
// in-memory segments. Caller holds the lock.
func (s *shard) containsSegLocked(seg *segment) bool {
	for _, sg := range s.segs {
		if sg == seg {
			return true
		}
	}
	return false
}

// spillSnapshotLocked copies a segment's events in the canonical on-disk
// (time, seq) order. Caller holds the write lock; the copy holds only
// tuple references, so the expensive encode happens off-lock.
func (s *shard) spillSnapshotLocked(seg *segment) []persist.Event {
	events := make([]persist.Event, 0, seg.len())
	for _, ord := range seg.byTime {
		ev := seg.events[ord]
		events = append(events, persist.Event{Seq: ev.Seq, Tuple: ev.Tuple})
	}
	// byTime is time-sorted with ties in insertion order; the file wants
	// ties by seq.
	persist.SortEvents(events)
	return events
}

// selectQ evaluates the query against this shard, returning events in
// (event time, Seq) order, capped at q.Limit when set. Segments whose time
// envelope misses the query window are pruned without touching any index —
// or, for spilled segments, without opening the file; a cold segment that
// survives pruning has only its window-overlapping chunks read back and
// linearly filtered.
func (s *shard) selectQ(q Query) ([]Event, segScan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var sc segScan
	conds := condCache{}
	var out []Event
	for _, cs := range s.cold {
		if cs.prunedBy(q.From, q.To) {
			sc.pruned++
			continue
		}
		sc.scanned++
		var err error
		if out, err = cs.selectWindow(q, conds, out, &sc); err != nil {
			return nil, sc, err
		}
	}
	for _, seg := range s.segs {
		if seg.prunedBy(q.From, q.To) {
			sc.pruned++
			continue
		}
		sc.scanned++
		for _, ord := range seg.candidateSet(q) {
			ev := seg.events[ord]
			ok, err := matchEvent(ev, q, conds)
			if err != nil {
				return nil, sc, err
			}
			if ok {
				out = append(out, ev)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return eventLess(out[i], out[j]) })
	// The globally-earliest Limit events are contained in the union of each
	// shard's earliest Limit matches, so capping here is safe and keeps the
	// merge cost bounded.
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, sc, nil
}

// matchEvent applies every query constraint to one event; conds caches the
// per-schema compilation of q.Cond across segments.
func matchEvent(ev Event, q Query, conds map[*stt.Schema]*expr.Compiled) (bool, error) {
	t := ev.Tuple
	if !q.From.IsZero() && t.Time.Before(q.From) {
		return false, nil
	}
	if !q.To.IsZero() && !t.Time.Before(q.To) {
		return false, nil
	}
	if q.Region != nil && !q.Region.Contains(geo.Point{Lat: t.Lat, Lon: t.Lon}) {
		return false, nil
	}
	if len(q.Themes) > 0 && !matchTheme(t, q.Themes) {
		return false, nil
	}
	if len(q.Sources) > 0 && !containsString(q.Sources, t.Source) {
		return false, nil
	}
	if q.Cond != "" {
		c, ok := conds[t.Schema]
		if !ok {
			compiled, err := expr.CompileBool(q.Cond, expr.Env{Schema: t.Schema})
			if err != nil {
				// The condition does not type-check against this event's
				// schema: it cannot match events of this shape.
				conds[t.Schema] = nil
				return false, nil
			}
			c = compiled
			conds[t.Schema] = c
		}
		if c == nil {
			return false, nil
		}
		ok2, err := c.EvalBool(expr.Scope{Tuple: t})
		if err != nil {
			return false, fmt.Errorf("%w: %q: %v", ErrCondEval, q.Cond, err)
		}
		if !ok2 {
			return false, nil
		}
	}
	return true, nil
}

// countQ counts the matching events without materializing or sorting them.
// Time-only queries touch as few events as possible: pruned segments are
// skipped, fully-covered segments (in memory or on disk) contribute their
// count outright, partially-covered in-memory segments a binary-searched
// slice of their time index, and only a partially-covered cold segment
// reads its boundary chunks back. Only valid for queries without Cond or
// Limit.
func (s *shard) countQ(q Query) (int, segScan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var sc segScan
	n := 0
	timeOnly := q.Region == nil && len(q.Themes) == 0 && len(q.Sources) == 0
	for _, cs := range s.cold {
		if cs.prunedBy(q.From, q.To) {
			sc.pruned++
			continue
		}
		sc.scanned++
		if timeOnly && cs.coveredBy(q.From, q.To) {
			n += cs.count
			continue
		}
		// A count never returns events, so only the filter columns need to
		// decode (v3 files; v1/v2 fall through to a full read).
		proj := persist.Projection{Mask: persist.ColTime}
		if len(q.Themes) > 0 {
			proj.Mask |= persist.ColTheme
		}
		if len(q.Sources) > 0 {
			proj.Mask |= persist.ColSource
		}
		if q.Region != nil {
			proj.Mask |= persist.ColGeo
		}
		evs, rs, err := cs.readWindowProjected(q.From, q.To, proj)
		if err != nil {
			return 0, sc, err
		}
		sc.addRead(rs)
		for _, ev := range evs {
			// q.Cond is empty here, so matchEvent cannot fail.
			if ok, _ := matchEvent(ev, q, nil); ok {
				n++
			}
		}
	}
	for _, seg := range s.segs {
		if seg.prunedBy(q.From, q.To) {
			sc.pruned++
			continue
		}
		sc.scanned++
		if timeOnly {
			lo, hi := seg.timeBounds(q.From, q.To)
			n += hi - lo
			continue
		}
		for _, ord := range seg.candidateSet(q) {
			if ok, _ := matchEvent(seg.events[ord], q, nil); ok {
				n++
			}
		}
	}
	return n, sc, nil
}

// stats folds this shard's contribution into st under the shard's own
// read lock; st itself is only touched by the single calling goroutine.
func (s *shard) stats(st *Stats) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st.Events += s.count
	st.Sources += len(s.sources) // sources are shard-local, so sums are exact
	st.Segments += len(s.segs) + len(s.cold)
	st.SegmentsCold += len(s.cold)
	for _, seg := range s.segs {
		for theme, ords := range seg.byTheme {
			st.Themes[theme] += len(ords)
		}
		if st.Earliest.IsZero() || seg.minTime.Before(st.Earliest) {
			st.Earliest = seg.minTime
		}
		if st.Latest.IsZero() || seg.maxTime.After(st.Latest) {
			st.Latest = seg.maxTime
		}
	}
	for _, cs := range s.cold {
		for theme, cnt := range cs.themeCounts {
			st.Themes[theme] += cnt
		}
		if st.Earliest.IsZero() || cs.head.Time.Before(st.Earliest) {
			st.Earliest = cs.head.Time
		}
		if st.Latest.IsZero() || cs.tail.Time.After(st.Latest) {
			st.Latest = cs.tail.Time
		}
	}
	if s.wal != nil {
		st.WALBytes += s.wal.Bytes()
	}
}

func matchTheme(t *stt.Tuple, themes []string) bool {
	for _, want := range themes {
		if t.Theme == want || t.Schema.HasTheme(want) {
			return true
		}
	}
	return false
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
