package warehouse

import (
	"path/filepath"
	"sync"
	"sync/atomic"

	"streamloader/internal/persist"
)

// spiller is the per-warehouse background spill worker. Append paths that
// find a shard over its hot-segment budget enqueue sealed segments here and
// return immediately; the worker writes each segment file outside any shard
// lock and only re-acquires the lock for the brief swap that replaces the
// in-memory segment with its cold envelope. Ingest therefore never stalls
// on a segment flush — the file write, the expensive part, runs entirely
// off the hot path.
//
// The pipeline is crash-idempotent at every step. Until the swap, readers
// see the segment as hot and its WAL records stay live, so a crash before
// the file is published loses nothing (the WAL replays it) and a crash
// after publication but before the swap leaves a segment file whose events
// recovery dedupes against the WAL by sequence number. A segment the
// retention compactor trims or drops while its file write is in flight
// fails the swap validation; the stale file is deleted and the segment
// (if it survived) is re-enqueued by a later append.
type spiller struct {
	w *Warehouse

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []spillReq
	inFlight int
	closed   bool

	// aborted is the crash switch: the worker stops at its next checkpoint
	// without draining, leaving whatever on-disk state the "crash" produced
	// for recovery to sort out. CloseHard sets it.
	aborted atomic.Bool

	wg sync.WaitGroup
}

// spillReq names one sealed segment to flush.
type spillReq struct {
	s   *shard
	seg *segment
}

// backlogPerShard sizes the spill queue bound: appends start throttling
// (off-lock, via throttle) once more than this many segments per shard sit
// queued. It caps the memory the pipeline can hold beyond the hot budget —
// at most backlogPerShard×shards sealed segments await their file — while
// staying deep enough that a bursty shard never waits on a healthy disk.
const backlogPerShard = 4

func newSpiller(w *Warehouse) *spiller {
	sp := &spiller{w: w}
	sp.cond = sync.NewCond(&sp.mu)
	return sp
}

// start launches the worker. Separate from construction so Open can
// enqueue recovery backlog before the shards are shared with a goroutine.
func (sp *spiller) start() {
	sp.wg.Add(1)
	go sp.loop()
}

// enqueue queues one segment for spilling. Caller holds the owning shard's
// lock and has marked the segment spilling.
func (sp *spiller) enqueue(s *shard, seg *segment) {
	sp.mu.Lock()
	sp.queue = append(sp.queue, spillReq{s: s, seg: seg})
	sp.cond.Broadcast()
	sp.mu.Unlock()
}

func (sp *spiller) loop() {
	defer sp.wg.Done()
	for {
		sp.mu.Lock()
		for len(sp.queue) == 0 && !sp.closed && !sp.aborted.Load() {
			sp.cond.Wait()
		}
		if sp.aborted.Load() || (sp.closed && len(sp.queue) == 0) {
			sp.mu.Unlock()
			return
		}
		req := sp.queue[0]
		sp.queue[0] = spillReq{}
		sp.queue = sp.queue[1:]
		sp.inFlight++
		sp.cond.Broadcast() // the queue shrank: wake throttled appenders
		sp.mu.Unlock()

		sp.w.spillOne(req)

		sp.mu.Lock()
		sp.inFlight--
		sp.cond.Broadcast() // wake DrainSpills waiters
		sp.mu.Unlock()
	}
}

// close drains the queue — every pending segment is spilled — and stops the
// worker. Idempotent.
func (sp *spiller) close() {
	sp.mu.Lock()
	sp.closed = true
	sp.cond.Broadcast()
	sp.mu.Unlock()
	sp.wg.Wait()
}

// abort stops the worker as a crash would: pending requests are dropped
// and an in-flight file write completes without its swap, exactly the disk
// state a kill between rename and swap leaves behind. It waits for the
// worker to exit so the data directory is quiescent before recovery reads
// it. Idempotent.
func (sp *spiller) abort() {
	sp.aborted.Store(true)
	sp.mu.Lock()
	sp.cond.Broadcast()
	sp.mu.Unlock()
	sp.wg.Wait()
}

// drain blocks until the queue is empty and no spill is in flight.
func (sp *spiller) drain() {
	sp.mu.Lock()
	for (len(sp.queue) > 0 || sp.inFlight > 0) && !sp.aborted.Load() {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

// throttle blocks while the queue is over its bound, holding no shard
// lock: when ingest outruns the disk, appends slow to the spill worker's
// pace instead of queueing sealed segments without limit. Readers and
// other shards are unaffected — only the producing goroutine waits.
func (sp *spiller) throttle(maxQueue int) {
	sp.mu.Lock()
	for len(sp.queue) > maxQueue && !sp.closed && !sp.aborted.Load() {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

// throttleSpill applies spill backpressure to an append path; a no-op for
// in-memory warehouses and whenever the queue is shallow. Called after the
// shard lock is released.
func (w *Warehouse) throttleSpill() {
	if w.spill != nil {
		w.spill.throttle(backlogPerShard * len(w.shards))
	}
}

// DrainSpills blocks until every queued background spill has completed.
// Queries need no such barrier — a segment is readable throughout its spill
// — but tests and benchmarks use it to reach a settled hot/cold split.
// No-op for an in-memory warehouse.
func (w *Warehouse) DrainSpills() {
	if w.spill != nil {
		w.spill.drain()
	}
}

// spillOne flushes one queued segment: snapshot under the shard lock, file
// write outside it, swap under it again.
func (w *Warehouse) spillOne(req spillReq) {
	s, seg := req.s, req.seg

	s.mu.Lock()
	if !s.containsSegLocked(seg) || seg.len() == 0 {
		// Retention dropped the segment whole while it sat in the queue.
		seg.spilling = false
		s.mu.Unlock()
		return
	}
	events := s.spillSnapshotLocked(seg)
	snapLen := len(events)
	gen := s.nextSegGen
	s.nextSegGen++
	path := filepath.Join(s.dir, persist.SegmentFileName(gen))
	s.mu.Unlock()
	t0 := w.met.spill.Start()
	defer w.met.spill.Since(t0)

	if w.spill.aborted.Load() {
		return // crash before the file exists: WAL still owns the events
	}
	info, err := persist.WriteSegmentVersion(path, events, w.segVersion)
	if err != nil {
		// Durability is unaffected — the WAL records survive — and the
		// segment stays queryable in memory; a later append re-enqueues.
		s.mu.Lock()
		seg.spilling = false
		s.mu.Unlock()
		return
	}
	if w.spill.aborted.Load() {
		// Crash after publication, before the swap: recovery re-registers
		// the file and dedupes its WAL records by seq.
		return
	}
	var seqHi uint64
	for _, ev := range events {
		if ev.Seq > seqHi {
			seqHi = ev.Seq
		}
	}
	w.installSpill(s, seg, info, snapLen, seqHi)
}

// installSpill swaps a written segment file for its in-memory segment and
// checkpoints the WAL, under the shard lock. If retention touched the
// segment while the file was being written, the file is stale — its
// contents include events that were just evicted — so it is discarded and
// the surviving segment left in memory for a later retry.
func (w *Warehouse) installSpill(s *shard, seg *segment, info *persist.SegmentInfo, snapLen int, seqHi uint64) {
	s.mu.Lock()
	idx := -1
	for i, sg := range s.segs {
		if sg == seg {
			idx = i
			break
		}
	}
	if idx < 0 || seg.len() != snapLen {
		seg.spilling = false
		s.mu.Unlock()
		_ = info.Remove() // never installed, so never cached or read
		return
	}
	s.segs = append(s.segs[:idx], s.segs[idx+1:]...)
	cs := w.newColdSegment(info)
	cs.seqHi = seqHi
	s.cold = append(s.cold, cs)
	w.segsSpilled.Add(1)
	w.coldBytes.Add(info.Bytes)
	// The swap may have raised the shard's minimum live seq; retire WAL
	// files the spilled file now makes obsolete.
	s.wal.DropObsolete(s.minLiveSeqLocked())
	s.mu.Unlock()
	// A fresh cold file may complete a mergeable run (small straggler
	// spills, overlapping side segments).
	w.maybeCompactCold(s)
}
