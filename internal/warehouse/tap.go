package warehouse

// The post-commit event tap is the single ordered hook point on the ingest
// path. Append and AppendBatch dispatch to it exactly once per committed
// sub-batch, while still holding the shard write lock, after the two commit
// steps have both happened: the WAL write (durable mode) and shard
// visibility (appendLocked). Everything that used to ride inline on the
// append paths — today the spiller's hot-budget bookkeeping and the
// materialized views' delta maintenance — consumes the same tap, in
// attachment order, instead of being wired into each append call site
// separately.
//
// Running under the shard lock is what gives consumers their ordering
// guarantee: taps for one shard fire serially, in commit order, and a
// consumer that folds the events it sees plus a scan it performs under the
// same lock (view backfill) observes each event exactly once. The flip side
// is the contract below: onCommit must be brief and must never take another
// shard's lock, the views registry lock, or block on I/O.

// tapConsumer is one consumer of the post-commit tap.
type tapConsumer interface {
	// onCommit observes one committed batch of events on shard s. It runs
	// under s.mu (write); evs is only valid for the duration of the call
	// and must not be retained. Implementations must not acquire other
	// shard locks or block.
	onCommit(w *Warehouse, s *shard, evs []Event)
}

// dispatchTapLocked fires every attached tap for one committed batch.
// Caller holds s.mu (write).
func (s *shard) dispatchTapLocked(w *Warehouse, evs []Event) {
	for _, tc := range s.taps {
		tc.onCommit(w, s, evs)
	}
}

// attachTapLocked subscribes a consumer to this shard's commits. Caller
// holds s.mu (write); a consumer attached mid-stream sees every commit
// after — and none before — the attach.
func (s *shard) attachTapLocked(tc tapConsumer) {
	s.taps = append(s.taps, tc)
}

// detachTapLocked removes a consumer (identity match). Caller holds s.mu
// (write). No-op when absent, so teardown paths can call it uncondition-
// ally.
func (s *shard) detachTapLocked(tc tapConsumer) {
	for i, cur := range s.taps {
		if cur == tc {
			s.taps = append(s.taps[:i], s.taps[i+1:]...)
			return
		}
	}
}

// spillTap is the spiller's tap: after each commit it checks the shard's
// hot-segment budget and enqueues sealed segments for background spilling.
// Attached by Open on every shard of a durable warehouse; in-memory
// warehouses never attach it (maybeSpillLocked would no-op anyway).
type spillTap struct{}

func (spillTap) onCommit(w *Warehouse, s *shard, evs []Event) {
	s.maybeSpillLocked(w)
}
