package warehouse

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/partial"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// View checkpoints: a durable warehouse periodically persists each view's
// bucketed partial frames plus the per-shard seq high-water mark they
// cover, so a re-registration of the same (query, policy) — a server
// restart, an SSE client reconnecting — seeds from the checkpoint and
// folds only the WAL-tail events committed after it, instead of
// re-scanning all of history.
//
// Files live at <dataDir>/views/<fnv64(key)>.ckpt, written with the same
// write→validate→swap discipline as every other durable artifact: full
// serialization to a temp file, fsync, atomic rename, directory sync.
// The file embeds the canonical view key (hash-collision check) and a
// fingerprint of the manifest's cut frontier plus the lifetime eviction
// counter. Any eviction since the checkpoint changes the fingerprint and
// the resume is rejected — the persisted frames would still contain the
// evicted events, and their exact contribution is no longer recoverable.
// Rejection is always safe: the registration falls back to the ordinary
// backfill scan.
//
// Resume validation, per shard: the checkpoint's SeqHi must not exceed
// the shard's current high-water mark (a stale or foreign file fails
// here, as does a WAL that lost its tail in a crash — the backfill then
// rebuilds the truth). Sources route to shards by a stable hash, so a
// shard's event set is append-only across restarts and "fold everything
// with seq > SeqHi" reconstructs exactly the events the checkpoint has
// not seen. Cold files whose seqHi the checkpoint already covers are
// skipped without a read — that skip is what makes a resume cheap.

const viewCkptDir = "views"

type viewCkpt struct {
	// Key is the full canonical view key; the file name is only its hash.
	Key string `json:"key"`
	// CutsFP fingerprints the manifest's cut frontier and eviction counter
	// at snapshot time; any eviction since invalidates the checkpoint.
	CutsFP uint64          `json:"cuts_fp"`
	Shards []viewCkptShard `json:"shards"`
}

type viewCkptShard struct {
	// SeqHi is the shard's seq high-water mark the frames cover: every
	// committed event with Seq <= SeqHi is folded in, none above.
	SeqHi  uint64          `json:"seq_hi"`
	Groups []viewCkptGroup `json:"groups,omitempty"`
}

// viewCkptGroup flattens one (frame, group) state. Floats ride as
// strconv 'g' strings so ±Inf (the empty-extremum identity) and NaN
// survive JSON, and the restore is bit-exact.
type viewCkptGroup struct {
	Frame  int64  `json:"frame,omitempty"` // frame start, UnixNano (0: unbucketed)
	Sec    int64  `json:"sec,omitempty"`   // partial.Key time coordinates
	NS     int    `json:"ns,omitempty"`
	Source string `json:"source,omitempty"`
	Theme  string `json:"theme,omitempty"`
	Bucket int64  `json:"bucket,omitempty"` // State.Bucket, UnixNano (0: zero)
	Count  int64  `json:"count"`
	Sum    string `json:"sum"`
	Min    string `json:"min"`
	Max    string `json:"max"`
}

func viewCkptFileName(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x.ckpt", h.Sum64())
}

// cutsFingerprint hashes the manifest state a view checkpoint's validity
// depends on: the cut frontier and the lifetime eviction counter (which
// also advances on degraded evictions that record no cut). Caller holds
// retMu.
func cutsFingerprint(m *persist.Manifest) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "e=%d", m.Evictions)
	for _, c := range m.Cuts {
		fmt.Fprintf(h, "|%d,%d", c.Watermark.Time.UnixNano(), c.Watermark.Seq)
		for _, mk := range c.Marks {
			fmt.Fprintf(h, ";%d,%d,%d", mk.WALFile, mk.WALOff, mk.SegGen)
		}
	}
	return h.Sum64()
}

func fmtCkptFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func nanoOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func timeOrZero(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

func encodeCkptShard(seqHi uint64, st *partial.Store) viewCkptShard {
	sh := viewCkptShard{SeqHi: seqHi}
	st.ForEach(func(start time.Time, k partial.Key, s *partial.State) {
		sh.Groups = append(sh.Groups, viewCkptGroup{
			Frame:  nanoOrZero(start),
			Sec:    k.Sec,
			NS:     k.NS,
			Source: k.Source,
			Theme:  k.Theme,
			Bucket: nanoOrZero(s.Bucket),
			Count:  s.Count,
			Sum:    fmtCkptFloat(s.Sum),
			Min:    fmtCkptFloat(s.Min),
			Max:    fmtCkptFloat(s.Max),
		})
	})
	return sh
}

func decodeCkptShard(width time.Duration, sh viewCkptShard) (*partial.Store, error) {
	st := partial.NewStore(width)
	for _, g := range sh.Groups {
		sum, err := strconv.ParseFloat(g.Sum, 64)
		if err != nil {
			return nil, err
		}
		mn, err := strconv.ParseFloat(g.Min, 64)
		if err != nil {
			return nil, err
		}
		mx, err := strconv.ParseFloat(g.Max, 64)
		if err != nil {
			return nil, err
		}
		k := partial.Key{Sec: g.Sec, NS: g.NS, Source: g.Source, Theme: g.Theme}
		st.Put(k, timeOrZero(g.Frame), &partial.State{
			Bucket: timeOrZero(g.Bucket),
			Count:  g.Count,
			Sum:    sum,
			Min:    mn,
			Max:    mx,
		})
	}
	return st, nil
}

// writeCheckpoint persists the view's current state when it is clean: a
// durable warehouse, checkpoints enabled, no terminal error, no pending
// rebuild or boundary rescan. Failures are silent — a checkpoint is an
// optimization, never a correctness dependency — and a skipped write just
// means the next registration backfills.
func (v *View) writeCheckpoint() {
	w := v.w
	if w.pers == nil || w.viewCkptEvery <= 0 {
		return
	}
	// refreshMu excludes rebuilds and boundary-rescan drains for the whole
	// write. Without it a concurrent refreshLocked could empty the rescan
	// queue (takeRescans) and be mid-drain — pendingRescans false, frames
	// still stale — while we snapshot.
	v.refreshMu.Lock()
	defer v.refreshMu.Unlock()
	if v.takeErr() != nil || v.dirty.Load() || v.pendingRescans() {
		return
	}
	ck := viewCkpt{Key: v.key}
	// The fingerprint is read before the shard snapshots: a cut landing in
	// between changes the manifest, so the stale fingerprint makes the
	// checkpoint reject at resume — over-rejection, never a wrong accept.
	w.retMu.Lock()
	ck.CutsFP = cutsFingerprint(&w.pers.manifest)
	w.retMu.Unlock()
	ck.Shards = make([]viewCkptShard, 0, len(w.shards))
	for i, s := range w.shards {
		p := v.parts[i]
		// The read lock excludes commits (the tap fires under the write
		// lock), so seqHi and the frames are one consistent snapshot.
		s.mu.RLock()
		hi := s.seqHi
		p.mu.Lock()
		clone := p.store.Clone()
		p.mu.Unlock()
		s.mu.RUnlock()
		ck.Shards = append(ck.Shards, encodeCkptShard(hi, clone))
	}
	// Re-check after the snapshots. A retention cut can complete entirely
	// between the guard above and the fingerprint read; when its boundary
	// patch degraded to a queued rescan (unknown cold boundary, MIN/MAX)
	// the snapshots then carry the frame drops but not the correction,
	// while the fingerprint is already post-cut — a checkpoint that would
	// wrongly ACCEPT at resume and resurrect evicted events. Such a cut
	// queues the rescan (or sets dirty) before releasing its shard locks,
	// so it is visible here; a cut starting after the snapshots instead
	// changes the manifest, and the stale fingerprint rejects at resume.
	if v.dirty.Load() || v.pendingRescans() {
		return
	}
	if err := writeViewCkptFile(w.pers.dir, v.key, &ck); err == nil {
		w.viewCheckpoints.Add(1)
	}
}

func writeViewCkptFile(dir, key string, ck *viewCkpt) error {
	d := filepath.Join(dir, viewCkptDir)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	path := filepath.Join(d, viewCkptFileName(key))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if df, err := os.Open(d); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}

// readViewCkpt loads the checkpoint for key; (nil, nil) when none exists
// and an error only for a present-but-unreadable file.
func readViewCkpt(dir, key string) (*viewCkpt, error) {
	data, err := os.ReadFile(filepath.Join(dir, viewCkptDir, viewCkptFileName(key)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ck viewCkpt
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, err
	}
	if ck.Key != key {
		return nil, fmt.Errorf("warehouse: view checkpoint key mismatch (hash collision)")
	}
	return &ck, nil
}

// tryResume seeds the view from a persisted checkpoint plus a tail fold
// of the events committed after it. On success the dirty flag is cleared
// and every shard's tap is attached — the view is live without a history
// scan. Any validation failure leaves the view dirty for the ordinary
// backfill; resume is strictly an optimization.
func (v *View) tryResume() {
	w := v.w
	if w.pers == nil || w.viewCkptEvery <= 0 {
		return
	}
	ck, err := readViewCkpt(w.pers.dir, v.key)
	if err != nil || ck == nil || len(ck.Shards) != len(w.shards) {
		return
	}
	w.retMu.Lock()
	fpOK := ck.CutsFP == cutsFingerprint(&w.pers.manifest)
	w.retMu.Unlock()
	if !fpOK {
		return
	}
	stores := make([]*partial.Store, len(ck.Shards))
	for i, sh := range ck.Shards {
		st, err := decodeCkptShard(v.plan.Bucket, sh)
		if err != nil {
			return
		}
		stores[i] = st
	}
	v.dirty.Store(false)
	for i, s := range w.shards {
		p := v.parts[i]
		s.mu.Lock()
		if ck.Shards[i].SeqHi > s.seqHi {
			s.mu.Unlock()
			v.resumeAbort(i)
			return
		}
		// Fold the tail and attach the tap in one critical section, so no
		// commit lands in both the fold and the tap, and none in neither —
		// the same gap-free handoff the backfill scan uses.
		if err := v.foldTailLocked(s, stores[i], ck.Shards[i].SeqHi, p.conds); err != nil {
			s.mu.Unlock()
			v.resumeAbort(i)
			return
		}
		p.mu.Lock()
		p.store = stores[i]
		p.mu.Unlock()
		s.attachTapLocked(p)
		s.mu.Unlock()
	}
	v.mutations.Add(1)
	w.viewResumes.Add(1)
}

// resumeAbort rolls a half-done resume back: taps detached from the
// shards already seeded, dirty set so the backfill scan takes over.
func (v *View) resumeAbort(attached int) {
	for j := 0; j < attached; j++ {
		s := v.w.shards[j]
		s.mu.Lock()
		s.detachTapLocked(v.parts[j])
		s.mu.Unlock()
	}
	v.dirty.Store(true)
}

// foldTailLocked folds every event on s with Seq > after into st through
// the view's filter. Caller holds s.mu (write). Cold files entirely
// covered by the checkpoint (seqHi <= after) are skipped without a read;
// memory segments are cheap enough to walk unconditionally.
func (v *View) foldTailLocked(s *shard, st *partial.Store, after uint64, conds map[*stt.Schema]*expr.Compiled) error {
	fold := func(evs []Event) error {
		for _, ev := range evs {
			if ev.Seq <= after {
				continue
			}
			ok, err := matchEvent(ev, v.plan.Query, conds)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if !v.plan.accumulateStore(st, ev.Tuple) {
				return errAggGroups
			}
		}
		return nil
	}
	for _, cs := range s.cold {
		if cs.seqHi <= after {
			continue
		}
		evs, _, err := cs.readWindow(time.Time{}, time.Time{})
		if err != nil {
			return err
		}
		if err := fold(evs); err != nil {
			return err
		}
	}
	for _, seg := range s.segs {
		if err := fold(seg.events); err != nil {
			return err
		}
	}
	return nil
}

// recordViewDef records the view's definition in the manifest, so the
// durable directory is self-describing: which standing queries exist,
// and which checkpoint file belongs to each. Records beyond the cap
// evict oldest-first, deleting the evicted checkpoint with them.
func (w *Warehouse) recordViewDef(v *View) {
	if w.pers == nil {
		return
	}
	rec := persist.ViewRecord{
		Key:    v.key,
		Query:  v.plan.AggQueryValues().Encode(),
		Policy: v.policy.String(),
		File:   viewCkptFileName(v.key),
	}
	w.retMu.Lock()
	changed, evicted := w.pers.manifest.AddView(rec)
	if changed {
		_ = persist.SaveManifest(w.pers.dir, w.pers.manifest)
	}
	w.retMu.Unlock()
	for _, old := range evicted {
		_ = os.Remove(filepath.Join(w.pers.dir, viewCkptDir, old.File))
	}
}
