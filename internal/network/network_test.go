package network

import (
	"testing"
	"testing/quick"

	"streamloader/internal/dsn"
	"streamloader/internal/geo"
)

func cfg(nodes int) TopologyConfig {
	return TopologyConfig{Nodes: nodes, Capacity: 100, LatencyMS: 2, BandwidthKbps: 1000, Seed: 7}
}

func TestAddNodeValidation(t *testing.T) {
	n := New()
	if err := n.AddNode(Node{}); err == nil {
		t.Error("empty ID must fail")
	}
	if err := n.AddNode(Node{ID: "a"}); err == nil {
		t.Error("zero capacity must fail")
	}
	if err := n.AddNode(Node{ID: "a", Capacity: 10}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(Node{ID: "a", Capacity: 10}); err == nil {
		t.Error("duplicate must fail")
	}
}

func TestAddLinkValidation(t *testing.T) {
	n := New()
	_ = n.AddNode(Node{ID: "a", Capacity: 10})
	_ = n.AddNode(Node{ID: "b", Capacity: 10})
	if err := n.AddLink("a", "a", 1, 100); err == nil {
		t.Error("self link must fail")
	}
	if err := n.AddLink("a", "ghost", 1, 100); err == nil {
		t.Error("unknown endpoint must fail")
	}
	if err := n.AddLink("a", "b", -1, 100); err == nil {
		t.Error("negative latency must fail")
	}
	if err := n.AddLink("a", "b", 1, 0); err == nil {
		t.Error("zero bandwidth must fail")
	}
	if err := n.AddLink("a", "b", 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("b", "a", 1, 100); err == nil {
		t.Error("duplicate (reversed) link must fail")
	}
}

func TestTopologies(t *testing.T) {
	for _, kind := range []string{"star", "line", "tree", "random"} {
		n, err := Build(kind, cfg(8))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(n.Nodes()) != 8 {
			t.Errorf("%s: %d nodes", kind, len(n.Nodes()))
		}
		// Every pair must be connected.
		ids := n.Nodes()
		for _, a := range ids {
			for _, b := range ids {
				if _, _, err := n.Route(a, b); err != nil {
					t.Errorf("%s: no route %s -> %s", kind, a, b)
				}
			}
		}
	}
	if _, err := Build("donut", cfg(4)); err == nil {
		t.Error("unknown topology must fail")
	}
	if _, err := Star(cfg(0)); err == nil {
		t.Error("zero nodes must fail")
	}
}

func TestRegionsPartitionArea(t *testing.T) {
	n, err := Star(cfg(5))
	if err != nil {
		t.Fatal(err)
	}
	// Every point in Osaka maps to some node.
	pts := []geo.Point{
		geo.OsakaCenter,
		{Lat: 34.45, Lon: 135.25},
		{Lat: 34.85, Lon: 135.65},
	}
	for _, p := range pts {
		id, err := n.NodeForLocation(p)
		if err != nil {
			t.Errorf("no node for %v: %v", p, err)
			continue
		}
		node, _, _ := n.Node(id)
		if !node.Region.Contains(p) {
			t.Errorf("node %s region %v does not contain %v", id, node.Region, p)
		}
	}
	// A point outside the area falls back to a healthy node.
	if _, err := n.NodeForLocation(geo.Point{Lat: 0, Lon: 0}); err != nil {
		t.Errorf("fallback failed: %v", err)
	}
}

func TestRouteShortestPath(t *testing.T) {
	// line: node-00 .. node-04, 2ms per hop.
	n, err := Line(cfg(5))
	if err != nil {
		t.Fatal(err)
	}
	path, latency, err := n.Route("node-00", "node-04")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 || latency != 8 {
		t.Errorf("path=%v latency=%v, want 5 hops 8ms", path, latency)
	}
	// Self route.
	path, latency, err = n.Route("node-02", "node-02")
	if err != nil || len(path) != 1 || latency != 0 {
		t.Errorf("self route: %v %v %v", path, latency, err)
	}
	if _, _, err := n.Route("node-00", "ghost"); err == nil {
		t.Error("unknown target must fail")
	}
}

func TestRouteAvoidsDownNodes(t *testing.T) {
	// Star with hub node-00: spoke-to-spoke goes through the hub; hub down
	// disconnects them.
	n, err := Star(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Route("node-01", "node-02"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetDown("node-00", true); err != nil {
		t.Fatal(err)
	}
	if !n.IsDown("node-00") {
		t.Error("IsDown")
	}
	if _, _, err := n.Route("node-01", "node-02"); err == nil {
		t.Error("route through a down hub must fail")
	}
	if err := n.SetDown("node-00", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Route("node-01", "node-02"); err != nil {
		t.Error("route must recover after node comes back")
	}
	if err := n.SetDown("ghost", true); err == nil {
		t.Error("SetDown on unknown node must fail")
	}
}

func TestAllocateFlowReservesBandwidth(t *testing.T) {
	n, err := Line(cfg(3)) // 1000 kbps links
	if err != nil {
		t.Fatal(err)
	}
	f, err := n.AllocateFlow("f1", "node-00", "node-02", dsn.QoS{MaxLatencyMS: 100, MinBandwidthKbps: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Path) != 3 || f.LatencyMS != 4 {
		t.Errorf("flow: %+v", f)
	}
	free, ok := n.LinkFree("node-00", "node-01")
	if !ok || free != 400 {
		t.Errorf("free = %v", free)
	}
	// Second flow needing 600 kbps cannot fit.
	if _, err := n.AllocateFlow("f2", "node-00", "node-02", dsn.QoS{MinBandwidthKbps: 600}); err == nil {
		t.Error("over-subscription must fail")
	}
	// 400 kbps fits.
	if _, err := n.AllocateFlow("f3", "node-00", "node-02", dsn.QoS{MinBandwidthKbps: 400}); err != nil {
		t.Errorf("fitting flow rejected: %v", err)
	}
	// Release frees the reservation.
	if err := n.ReleaseFlow("f1"); err != nil {
		t.Fatal(err)
	}
	free, _ = n.LinkFree("node-00", "node-01")
	if free != 600 {
		t.Errorf("free after release = %v", free)
	}
	if err := n.ReleaseFlow("ghost"); err == nil {
		t.Error("releasing unknown flow must fail")
	}
	if _, err := n.AllocateFlow("f3", "node-00", "node-01", dsn.QoS{}); err == nil {
		t.Error("duplicate flow ID must fail")
	}
}

func TestAllocateFlowLatencyBound(t *testing.T) {
	n, err := Line(cfg(5)) // 2ms per hop, 8ms end to end
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AllocateFlow("tight", "node-00", "node-04", dsn.QoS{MaxLatencyMS: 5}); err == nil {
		t.Error("latency bound must reject the only path")
	}
	if _, err := n.AllocateFlow("loose", "node-00", "node-04", dsn.QoS{MaxLatencyMS: 10}); err != nil {
		t.Errorf("feasible flow rejected: %v", err)
	}
}

func TestColocatedFlow(t *testing.T) {
	n, err := Star(cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	f, err := n.AllocateFlow("loop", "node-01", "node-01", dsn.QoS{MinBandwidthKbps: 999999})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Path) != 1 || f.LatencyMS != 0 {
		t.Errorf("loopback: %+v", f)
	}
}

func TestTransferAccounting(t *testing.T) {
	n, _ := Star(cfg(2))
	if _, err := n.AllocateFlow("f", "node-00", "node-01", dsn.QoS{MinBandwidthKbps: 10}); err != nil {
		t.Fatal(err)
	}
	n.RecordTransfer("f", 10, 640)
	n.RecordTransfer("f", 5, 320)
	n.RecordTransfer("ghost", 1, 1) // silently ignored
	tuples, bytes := n.TransferStats("f")
	if tuples != 15 || bytes != 960 {
		t.Errorf("stats = %d, %d", tuples, bytes)
	}
	if tu, by := n.TransferStats("ghost"); tu != 0 || by != 0 {
		t.Error("unknown flow stats must be zero")
	}
	if len(n.Flows()) != 1 || n.Flows()[0] != "f" {
		t.Errorf("Flows = %v", n.Flows())
	}
}

func TestLoadAccounting(t *testing.T) {
	n, _ := Star(cfg(2))
	if err := n.AddLoad("node-00", 30); err != nil {
		t.Fatal(err)
	}
	if n.Load("node-00") != 30 {
		t.Error("Load")
	}
	if err := n.AddLoad("node-00", -50); err != nil {
		t.Fatal(err)
	}
	if n.Load("node-00") != 0 {
		t.Error("load must clamp at zero")
	}
	if err := n.AddLoad("ghost", 1); err == nil {
		t.Error("unknown node must fail")
	}
	if n.Load("ghost") != 0 {
		t.Error("unknown node load is zero")
	}
	_ = n.AddLoad("node-01", 50)
	util := n.Utilization()
	if util["node-01"] != 0.5 {
		t.Errorf("utilization = %v", util)
	}
}

func TestPlacementStrategies(t *testing.T) {
	services := make([]ServiceInfo, 12)
	for i := range services {
		services[i] = ServiceInfo{Name: nodeID(i), Kind: "filter", Weight: 10}
	}

	t.Run("round-robin", func(t *testing.T) {
		n, _ := Star(cfg(4))
		s := &RoundRobin{}
		counts := map[string]int{}
		for _, svc := range services {
			id, err := s.Place(svc, n)
			if err != nil {
				t.Fatal(err)
			}
			counts[id]++
		}
		for id, c := range counts {
			if c != 3 {
				t.Errorf("node %s got %d services, want 3", id, c)
			}
		}
	})

	t.Run("random", func(t *testing.T) {
		n, _ := Star(cfg(4))
		s := NewRandomPlacement(42)
		counts := map[string]int{}
		for _, svc := range services {
			id, err := s.Place(svc, n)
			if err != nil {
				t.Fatal(err)
			}
			counts[id]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != 12 {
			t.Errorf("placed %d", total)
		}
		// Reproducibility.
		n2, _ := Star(cfg(4))
		s2 := NewRandomPlacement(42)
		for _, svc := range services {
			id2, _ := s2.Place(svc, n2)
			_ = id2
		}
		if n2.Load("node-00") != n.Load("node-00") {
			t.Error("seeded random placement must be reproducible")
		}
	})

	t.Run("least-loaded", func(t *testing.T) {
		n, _ := Star(cfg(4))
		// Pre-load node-00 heavily: least-loaded must avoid it.
		_ = n.AddLoad("node-00", 90)
		s := LeastLoaded{}
		for _, svc := range services {
			id, err := s.Place(svc, n)
			if err != nil {
				t.Fatal(err)
			}
			if id == "node-00" && n.Load("node-00") > 95 {
				t.Error("least-loaded placed onto the hottest node")
			}
		}
		if n.Load("node-00") != 90 {
			t.Errorf("hot node received work: load = %v", n.Load("node-00"))
		}
		util := n.Utilization()
		// Spread among the cold nodes must be tight: <= one service weight.
		minU, maxU := 2.0, -1.0
		for id, u := range util {
			if id == "node-00" {
				continue
			}
			if u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
		}
		if maxU-minU > 0.11 {
			t.Errorf("utilization spread too wide: %v", util)
		}
	})

	t.Run("locality", func(t *testing.T) {
		n, _ := Star(cfg(4))
		s := Locality{}
		// Preferred node honored while it has headroom.
		id, err := s.Place(ServiceInfo{Name: "src", Weight: 10, PreferredNode: "node-02"}, n)
		if err != nil || id != "node-02" {
			t.Errorf("locality ignored preference: %v %v", id, err)
		}
		// Preferred node rejected when overloaded.
		_ = n.AddLoad("node-03", 95)
		id, err = s.Place(ServiceInfo{Name: "src2", Weight: 10, PreferredNode: "node-03"}, n)
		if err != nil {
			t.Fatal(err)
		}
		if id == "node-03" {
			t.Error("locality placed onto an overloaded node")
		}
		// Down preferred node skipped.
		_ = n.SetDown("node-02", true)
		id, err = s.Place(ServiceInfo{Name: "src3", Weight: 10, PreferredNode: "node-02"}, n)
		if err != nil {
			t.Fatal(err)
		}
		if id == "node-02" {
			t.Error("locality placed onto a down node")
		}
	})

	t.Run("no healthy nodes", func(t *testing.T) {
		n, _ := Star(cfg(2))
		_ = n.SetDown("node-00", true)
		_ = n.SetDown("node-01", true)
		for _, s := range []Strategy{&RoundRobin{}, NewRandomPlacement(1), LeastLoaded{}, Locality{}} {
			if _, err := s.Place(ServiceInfo{Name: "x", Weight: 1}, n); err == nil {
				t.Errorf("%s placed with no healthy nodes", s.Name())
			}
		}
	})
}

func TestNewStrategy(t *testing.T) {
	for _, name := range []string{"round-robin", "random", "least-loaded", "locality"} {
		s, err := NewStrategy(name, 1)
		if err != nil || s.Name() != name {
			t.Errorf("NewStrategy(%s) = %v, %v", name, s, err)
		}
	}
	if _, err := NewStrategy("astrology", 1); err == nil {
		t.Error("unknown strategy must fail")
	}
}

// Property: for random topologies, routing is symmetric in latency.
func TestQuickRouteSymmetry(t *testing.T) {
	f := func(seed int64, a8, b8 uint8) bool {
		c := cfg(6)
		c.Seed = seed
		n, err := Random(c)
		if err != nil {
			return false
		}
		ids := n.Nodes()
		a, b := ids[int(a8)%len(ids)], ids[int(b8)%len(ids)]
		_, d1, err1 := n.Route(a, b)
		_, d2, err2 := n.Route(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		// Latency sums accumulate in opposite hop orders; float addition is
		// not associative, so compare with a tolerance.
		diff := d1 - d2
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
