package network

import (
	"fmt"
	"math/rand"

	"streamloader/internal/geo"
)

// TopologyConfig parameterizes the topology builders. Node regions tile the
// configured area so every sensor position maps to a managing node.
type TopologyConfig struct {
	// Nodes is the number of nodes to create.
	Nodes int
	// Area is the overall region the nodes share responsibility for.
	Area geo.Rect
	// Capacity is the per-node processing budget.
	Capacity float64
	// LatencyMS and BandwidthKbps configure every created link.
	LatencyMS     float64
	BandwidthKbps float64
	// Seed drives the random topology builder.
	Seed int64
}

func (c *TopologyConfig) defaults() {
	if c.Capacity <= 0 {
		c.Capacity = 100
	}
	if c.LatencyMS <= 0 {
		c.LatencyMS = 2
	}
	if c.BandwidthKbps <= 0 {
		c.BandwidthKbps = 100000
	}
	if !c.Area.Valid() || (c.Area == geo.Rect{}) {
		c.Area = geo.Osaka
	}
}

// regionFor slices the area into vertical strips, one per node, so node
// regions partition the area deterministically.
func regionFor(i, n int, area geo.Rect) geo.Rect {
	width := (area.Max.Lon - area.Min.Lon) / float64(n)
	min := geo.Point{Lat: area.Min.Lat, Lon: area.Min.Lon + float64(i)*width}
	max := geo.Point{Lat: area.Max.Lat, Lon: area.Min.Lon + float64(i+1)*width}
	return geo.Rect{Min: min, Max: max}
}

func nodeID(i int) string { return fmt.Sprintf("node-%02d", i) }

// Star builds a hub-and-spoke topology: node-00 is the hub.
func Star(cfg TopologyConfig) (*Network, error) {
	cfg.defaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("network: star needs >= 1 node")
	}
	n := New()
	for i := 0; i < cfg.Nodes; i++ {
		if err := n.AddNode(Node{
			ID: nodeID(i), Capacity: cfg.Capacity,
			Region: regionFor(i, cfg.Nodes, cfg.Area),
		}); err != nil {
			return nil, err
		}
	}
	for i := 1; i < cfg.Nodes; i++ {
		if err := n.AddLink(nodeID(0), nodeID(i), cfg.LatencyMS, cfg.BandwidthKbps); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Line builds a chain topology node-00 - node-01 - ... Useful for worst-case
// path lengths in latency experiments.
func Line(cfg TopologyConfig) (*Network, error) {
	cfg.defaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("network: line needs >= 1 node")
	}
	n := New()
	for i := 0; i < cfg.Nodes; i++ {
		if err := n.AddNode(Node{
			ID: nodeID(i), Capacity: cfg.Capacity,
			Region: regionFor(i, cfg.Nodes, cfg.Area),
		}); err != nil {
			return nil, err
		}
	}
	for i := 1; i < cfg.Nodes; i++ {
		if err := n.AddLink(nodeID(i-1), nodeID(i), cfg.LatencyMS, cfg.BandwidthKbps); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Tree builds a complete binary tree topology rooted at node-00, the shape
// of hierarchical sensor-network deployments.
func Tree(cfg TopologyConfig) (*Network, error) {
	cfg.defaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("network: tree needs >= 1 node")
	}
	n := New()
	for i := 0; i < cfg.Nodes; i++ {
		if err := n.AddNode(Node{
			ID: nodeID(i), Capacity: cfg.Capacity,
			Region: regionFor(i, cfg.Nodes, cfg.Area),
		}); err != nil {
			return nil, err
		}
	}
	for i := 1; i < cfg.Nodes; i++ {
		parent := (i - 1) / 2
		if err := n.AddLink(nodeID(parent), nodeID(i), cfg.LatencyMS, cfg.BandwidthKbps); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Random builds a connected random topology: a random spanning backbone plus
// extra random links for path diversity (about n/2 extras).
func Random(cfg TopologyConfig) (*Network, error) {
	cfg.defaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("network: random needs >= 1 node")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := New()
	for i := 0; i < cfg.Nodes; i++ {
		if err := n.AddNode(Node{
			ID: nodeID(i), Capacity: cfg.Capacity,
			Region: regionFor(i, cfg.Nodes, cfg.Area),
		}); err != nil {
			return nil, err
		}
	}
	// Spanning backbone: connect each node to a random earlier one.
	for i := 1; i < cfg.Nodes; i++ {
		j := rng.Intn(i)
		lat := cfg.LatencyMS * (0.5 + rng.Float64())
		if err := n.AddLink(nodeID(i), nodeID(j), lat, cfg.BandwidthKbps); err != nil {
			return nil, err
		}
	}
	// Extra links.
	for k := 0; k < cfg.Nodes/2; k++ {
		i, j := rng.Intn(cfg.Nodes), rng.Intn(cfg.Nodes)
		if i == j {
			continue
		}
		lat := cfg.LatencyMS * (0.5 + rng.Float64())
		// Ignore duplicate-link errors: density is best-effort.
		_ = n.AddLink(nodeID(i), nodeID(j), lat, cfg.BandwidthKbps)
	}
	return n, nil
}

// Build dispatches on a topology name: "star", "line", "tree" or "random".
func Build(kind string, cfg TopologyConfig) (*Network, error) {
	switch kind {
	case "star":
		return Star(cfg)
	case "line":
		return Line(cfg)
	case "tree":
		return Tree(cfg)
	case "random":
		return Random(cfg)
	default:
		return nil, fmt.Errorf("network: unknown topology %q", kind)
	}
}
