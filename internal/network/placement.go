package network

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// ServiceInfo describes one dataflow service for placement: the executor
// derives Weight from the operation kind (blocking operations cost more) and
// PreferredNode from sensor locality (sources want to run on the node
// managing their sensor — the paper binds "the sources ... to specific
// sensors handled by the network nodes").
type ServiceInfo struct {
	Name          string
	Kind          string
	Weight        float64
	PreferredNode string
}

// Strategy decides which node runs each service. Implementations must call
// Network.AddLoad for the chosen node so subsequent decisions see the load.
type Strategy interface {
	// Name identifies the strategy in benchmarks and logs.
	Name() string
	// Place returns the node for the service and records its load.
	Place(svc ServiceInfo, net *Network) (string, error)
}

// healthyNodes returns all non-failed node IDs, sorted.
func healthyNodes(net *Network) []string {
	var out []string
	for _, id := range net.Nodes() {
		if !net.IsDown(id) {
			out = append(out, id)
		}
	}
	return out
}

// RoundRobin cycles through the nodes in ID order.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name returns "round-robin".
func (*RoundRobin) Name() string { return "round-robin" }

// Place assigns the next node in rotation.
func (p *RoundRobin) Place(svc ServiceInfo, net *Network) (string, error) {
	nodes := healthyNodes(net)
	if len(nodes) == 0 {
		return "", fmt.Errorf("placement: no healthy nodes")
	}
	p.mu.Lock()
	id := nodes[p.next%len(nodes)]
	p.next++
	p.mu.Unlock()
	if err := net.AddLoad(id, svc.Weight); err != nil {
		return "", err
	}
	return id, nil
}

// RandomPlacement picks uniformly among healthy nodes, seeded for
// reproducibility.
type RandomPlacement struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomPlacement builds a seeded random strategy.
func NewRandomPlacement(seed int64) *RandomPlacement {
	return &RandomPlacement{rng: rand.New(rand.NewSource(seed))}
}

// Name returns "random".
func (*RandomPlacement) Name() string { return "random" }

// Place assigns a uniformly random healthy node.
func (p *RandomPlacement) Place(svc ServiceInfo, net *Network) (string, error) {
	nodes := healthyNodes(net)
	if len(nodes) == 0 {
		return "", fmt.Errorf("placement: no healthy nodes")
	}
	p.mu.Lock()
	id := nodes[p.rng.Intn(len(nodes))]
	p.mu.Unlock()
	if err := net.AddLoad(id, svc.Weight); err != nil {
		return "", err
	}
	return id, nil
}

// LeastLoaded assigns each service to the node with the lowest
// load/capacity ratio — the workload-aware placement the paper describes
// ("operations located on the machines that, depending on workload, apply
// the logic specified in the conceptual dataflow").
type LeastLoaded struct{}

// Name returns "least-loaded".
func (LeastLoaded) Name() string { return "least-loaded" }

// Place assigns the least utilized healthy node (ties break by ID).
func (LeastLoaded) Place(svc ServiceInfo, net *Network) (string, error) {
	nodes := healthyNodes(net)
	if len(nodes) == 0 {
		return "", fmt.Errorf("placement: no healthy nodes")
	}
	util := net.Utilization()
	sort.Slice(nodes, func(i, j int) bool {
		if util[nodes[i]] != util[nodes[j]] {
			return util[nodes[i]] < util[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	id := nodes[0]
	if err := net.AddLoad(id, svc.Weight); err != nil {
		return "", err
	}
	return id, nil
}

// Locality places services on their preferred node (sensor locality) when
// it exists, is healthy and is not overloaded; otherwise it falls back to
// least-loaded. This keeps source processing next to the data, cutting
// cross-node traffic.
type Locality struct {
	// OverloadFactor is the utilization above which the preferred node is
	// rejected (default 1.0 = at capacity).
	OverloadFactor float64
}

// Name returns "locality".
func (Locality) Name() string { return "locality" }

// Place prefers svc.PreferredNode, falling back to least-loaded.
func (p Locality) Place(svc ServiceInfo, net *Network) (string, error) {
	limit := p.OverloadFactor
	if limit <= 0 {
		limit = 1.0
	}
	if svc.PreferredNode != "" && !net.IsDown(svc.PreferredNode) {
		if node, load, ok := net.Node(svc.PreferredNode); ok {
			if (load+svc.Weight)/node.Capacity <= limit {
				if err := net.AddLoad(svc.PreferredNode, svc.Weight); err != nil {
					return "", err
				}
				return svc.PreferredNode, nil
			}
		}
	}
	return LeastLoaded{}.Place(svc, net)
}

// NewStrategy builds a placement strategy by name: "round-robin", "random",
// "least-loaded" or "locality".
func NewStrategy(name string, seed int64) (Strategy, error) {
	switch name {
	case "round-robin":
		return &RoundRobin{}, nil
	case "random":
		return NewRandomPlacement(seed), nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "locality":
		return Locality{}, nil
	default:
		return nil, fmt.Errorf("placement: unknown strategy %q", name)
	}
}
