// Package network simulates the programmable network StreamLoader deploys
// dataflows into (paper Figure 1: "at the bottom there is a network; each
// node ... is in charge of managing a bunch of sensors and can execute the
// proposed ETL stream processing operations").
//
// The simulation models what the paper's NICT testbed provides: nodes with
// processing capacity and a region of responsibility, links with latency and
// bandwidth, shortest-path routing, and flow allocation with QoS
// reservations — the network-configuration actions the SCN layer requests.
// It deliberately does not move packets; the executor moves tuples over Go
// channels and uses this package for placement, admission and accounting.
package network

import (
	"fmt"
	"sort"
	"sync"

	"streamloader/internal/dsn"
	"streamloader/internal/geo"
)

// Node is one machine of the programmable network.
type Node struct {
	// ID is the unique node name.
	ID string `json:"id"`
	// Capacity is the processing budget in abstract work units per second;
	// placement compares service weights against it.
	Capacity float64 `json:"capacity"`
	// Region is the area whose sensors this node manages.
	Region geo.Rect `json:"region"`

	load float64 // current placed weight
	down bool
}

// Link is an undirected edge between two nodes.
type Link struct {
	A, B          string
	LatencyMS     float64
	BandwidthKbps float64

	allocated float64 // reserved bandwidth
}

// Flow is an allocated path with QoS reservations (paper: "isolation of
// data traffic based on the ETL dataflow").
type Flow struct {
	ID           string
	From, To     string
	Path         []string
	ReservedKbps float64
	MaxLatencyMS int
	LatencyMS    float64

	bytes  uint64
	tuples uint64
}

// Network is the simulated topology plus its allocation state. All methods
// are safe for concurrent use.
type Network struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	links map[[2]string]*Link
	adj   map[string][]string
	flows map[string]*Flow
}

// New creates an empty network.
func New() *Network {
	return &Network{
		nodes: map[string]*Node{},
		links: map[[2]string]*Link{},
		adj:   map[string][]string{},
		flows: map[string]*Flow{},
	}
}

func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// AddNode registers a node.
func (n *Network) AddNode(node Node) error {
	if node.ID == "" {
		return fmt.Errorf("network: node needs an ID")
	}
	if node.Capacity <= 0 {
		return fmt.Errorf("network: node %s needs positive capacity", node.ID)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[node.ID]; dup {
		return fmt.Errorf("network: duplicate node %s", node.ID)
	}
	copy := node
	n.nodes[node.ID] = &copy
	return nil
}

// AddLink registers an undirected link between existing nodes.
func (n *Network) AddLink(a, b string, latencyMS, bandwidthKbps float64) error {
	if a == b {
		return fmt.Errorf("network: self link on %s", a)
	}
	if latencyMS < 0 || bandwidthKbps <= 0 {
		return fmt.Errorf("network: link %s-%s needs latency >= 0 and bandwidth > 0", a, b)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[a]; !ok {
		return fmt.Errorf("network: unknown node %s", a)
	}
	if _, ok := n.nodes[b]; !ok {
		return fmt.Errorf("network: unknown node %s", b)
	}
	key := linkKey(a, b)
	if _, dup := n.links[key]; dup {
		return fmt.Errorf("network: duplicate link %s-%s", a, b)
	}
	n.links[key] = &Link{A: key[0], B: key[1], LatencyMS: latencyMS, BandwidthKbps: bandwidthKbps}
	n.adj[a] = append(n.adj[a], b)
	n.adj[b] = append(n.adj[b], a)
	sort.Strings(n.adj[a])
	sort.Strings(n.adj[b])
	return nil
}

// Nodes returns the node IDs, sorted.
func (n *Network) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Node returns a copy of the node's descriptor and its current load.
func (n *Network) Node(id string) (Node, float64, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[id]
	if !ok {
		return Node{}, 0, false
	}
	return *node, node.load, true
}

// SetDown marks a node as failed (true) or healthy (false). Failed nodes are
// skipped by routing and placement; the executor reacts by migrating the
// services placed there.
func (n *Network) SetDown(id string, down bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("network: unknown node %s", id)
	}
	node.down = down
	return nil
}

// IsDown reports the failure state of a node.
func (n *Network) IsDown(id string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[id]
	return ok && node.down
}

// AddLoad adjusts a node's placed weight (positive on placement, negative
// on migration away).
func (n *Network) AddLoad(id string, delta float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("network: unknown node %s", id)
	}
	node.load += delta
	if node.load < 0 {
		node.load = 0
	}
	return nil
}

// Load returns the node's current placed weight.
func (n *Network) Load(id string) float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if node, ok := n.nodes[id]; ok {
		return node.load
	}
	return 0
}

// Utilization returns load/capacity per node, the monitor's "which node
// suffers because of high workload" figure.
func (n *Network) Utilization() map[string]float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[string]float64, len(n.nodes))
	for id, node := range n.nodes {
		out[id] = node.load / node.Capacity
	}
	return out
}

// Route computes the minimum-latency path between two nodes using Dijkstra,
// skipping failed nodes. It returns the path (inclusive) and its latency.
func (n *Network) Route(from, to string) ([]string, float64, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.routeLocked(from, to, 0)
}

// routeLocked is Dijkstra with an optional bandwidth constraint: links with
// less than minFreeKbps available are unusable.
func (n *Network) routeLocked(from, to string, minFreeKbps float64) ([]string, float64, error) {
	if _, ok := n.nodes[from]; !ok {
		return nil, 0, fmt.Errorf("network: unknown node %s", from)
	}
	if _, ok := n.nodes[to]; !ok {
		return nil, 0, fmt.Errorf("network: unknown node %s", to)
	}
	if n.nodes[from].down || n.nodes[to].down {
		return nil, 0, fmt.Errorf("network: endpoint down")
	}
	if from == to {
		return []string{from}, 0, nil
	}
	const inf = 1e18
	dist := map[string]float64{from: 0}
	prev := map[string]string{}
	visited := map[string]bool{}
	for {
		// Pick the unvisited node with the smallest distance (deterministic
		// tie-break by ID).
		best, bestD := "", inf
		for id, d := range dist {
			if !visited[id] && (d < bestD || (d == bestD && id < best)) {
				best, bestD = id, d
			}
		}
		if best == "" {
			return nil, 0, fmt.Errorf("network: no route %s -> %s", from, to)
		}
		if best == to {
			break
		}
		visited[best] = true
		for _, nb := range n.adj[best] {
			if visited[nb] || n.nodes[nb].down {
				continue
			}
			l := n.links[linkKey(best, nb)]
			if l.BandwidthKbps-l.allocated < minFreeKbps {
				continue
			}
			d := bestD + l.LatencyMS
			if cur, ok := dist[nb]; !ok || d < cur {
				dist[nb] = d
				prev[nb] = best
			}
		}
	}
	var path []string
	for at := to; at != ""; at = prev[at] {
		path = append(path, at)
		if at == from {
			break
		}
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[to], nil
}

// AllocateFlow admits a flow between two nodes with the given QoS: it finds
// the lowest-latency path with enough free bandwidth on every hop, verifies
// the latency bound, and reserves the bandwidth. Colocated endpoints yield a
// zero-cost loopback flow.
func (n *Network) AllocateFlow(id, from, to string, qos dsn.QoS) (*Flow, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.flows[id]; dup {
		return nil, fmt.Errorf("network: duplicate flow %s", id)
	}
	path, latency, err := n.routeLocked(from, to, float64(qos.MinBandwidthKbps))
	if err != nil {
		return nil, fmt.Errorf("network: flow %s: %w", id, err)
	}
	if qos.MaxLatencyMS > 0 && latency > float64(qos.MaxLatencyMS) {
		return nil, fmt.Errorf("network: flow %s: best path latency %.1fms exceeds bound %dms",
			id, latency, qos.MaxLatencyMS)
	}
	for i := 0; i+1 < len(path); i++ {
		n.links[linkKey(path[i], path[i+1])].allocated += float64(qos.MinBandwidthKbps)
	}
	f := &Flow{
		ID: id, From: from, To: to, Path: path,
		ReservedKbps: float64(qos.MinBandwidthKbps),
		MaxLatencyMS: qos.MaxLatencyMS,
		LatencyMS:    latency,
	}
	n.flows[id] = f
	return f, nil
}

// ReleaseFlow frees a flow's reservations.
func (n *Network) ReleaseFlow(id string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.flows[id]
	if !ok {
		return fmt.Errorf("network: unknown flow %s", id)
	}
	for i := 0; i+1 < len(f.Path); i++ {
		l := n.links[linkKey(f.Path[i], f.Path[i+1])]
		l.allocated -= f.ReservedKbps
		if l.allocated < 0 {
			l.allocated = 0
		}
	}
	delete(n.flows, id)
	return nil
}

// Flow returns a copy of the flow's descriptor.
func (n *Network) Flow(id string) (Flow, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	f, ok := n.flows[id]
	if !ok {
		return Flow{}, false
	}
	return *f, true
}

// Flows returns the IDs of all allocated flows, sorted.
func (n *Network) Flows() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.flows))
	for id := range n.flows {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RecordTransfer accounts tuples/bytes moved over a flow. The executor calls
// it per batch; the monitor reads it for the Figure 3 statistics.
func (n *Network) RecordTransfer(id string, tuples, bytes uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.flows[id]; ok {
		f.tuples += tuples
		f.bytes += bytes
	}
}

// TransferStats returns the accumulated tuples and bytes of a flow.
func (n *Network) TransferStats(id string) (tuples, bytes uint64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if f, ok := n.flows[id]; ok {
		return f.tuples, f.bytes
	}
	return 0, 0
}

// LinkFree returns the unallocated bandwidth of the link a-b.
func (n *Network) LinkFree(a, b string) (float64, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[linkKey(a, b)]
	if !ok {
		return 0, false
	}
	return l.BandwidthKbps - l.allocated, true
}

// NodeForLocation returns the node whose region contains the point,
// preferring the first in ID order; falls back to the first healthy node.
// This is how sensors are bound to the node "in charge of managing" them.
func (n *Network) NodeForLocation(p geo.Point) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		node := n.nodes[id]
		if !node.down && node.Region.Contains(p) {
			return id, nil
		}
	}
	for _, id := range ids {
		if !n.nodes[id].down {
			return id, nil
		}
	}
	return "", fmt.Errorf("network: no healthy node for %v", p)
}
