// Package monitor collects the execution statistics of the paper's
// Figure 3: "the number of tuples that each operation handles per second,
// the node that suffers because of high workload, which node is in charge of
// executing an operation and when the assignment changes".
//
// Logs of the activities are collected here by the executor and exposed as
// snapshots to the Web interface.
package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"streamloader/internal/obs"
	"streamloader/internal/ops"
)

// ringSize is how many samples each operation retains (the sparkline length
// of the monitoring UI).
const ringSize = 120

// Sample is one point of an operation's rate series.
type Sample struct {
	Time    time.Time `json:"time"`
	In      uint64    `json:"in"`
	Out     uint64    `json:"out"`
	Dropped uint64    `json:"dropped"`
	RateIn  float64   `json:"rate_in"`  // tuples/sec consumed since last sample
	RateOut float64   `json:"rate_out"` // tuples/sec produced since last sample
}

// opState tracks one registered operation process.
type opState struct {
	name     string
	node     string
	counters *ops.Counters

	lastSample Sample
	ring       []Sample
	ringNext   int
}

// EventKind classifies monitor events.
type EventKind string

// Monitor event kinds.
const (
	EventDeployed   EventKind = "deployed"
	EventReassigned EventKind = "reassigned"
	EventTrigger    EventKind = "trigger"
	EventNodeDown   EventKind = "node-down"
	EventNodeUp     EventKind = "node-up"
	EventSwapped    EventKind = "swapped"
	EventStopped    EventKind = "stopped"
)

// Event is one logged control-plane occurrence.
type Event struct {
	Time   time.Time `json:"time"`
	Kind   EventKind `json:"kind"`
	Op     string    `json:"op,omitempty"`
	Node   string    `json:"node,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s op=%s node=%s %s",
		e.Time.UTC().Format(time.RFC3339), e.Kind, e.Op, e.Node, e.Detail)
}

// OpReport is the per-operation part of a snapshot.
type OpReport struct {
	Name    string   `json:"name"`
	Node    string   `json:"node"`
	In      uint64   `json:"in"`
	Out     uint64   `json:"out"`
	Dropped uint64   `json:"dropped"`
	RateIn  float64  `json:"rate_in"`
	RateOut float64  `json:"rate_out"`
	Series  []Sample `json:"series,omitempty"`
}

// Report is a full monitoring snapshot for the Web interface.
type Report struct {
	Time      time.Time          `json:"time"`
	Ops       []OpReport         `json:"ops"`
	NodeLoad  map[string]float64 `json:"node_load,omitempty"`
	HotNode   string             `json:"hot_node,omitempty"`
	Events    []Event            `json:"events,omitempty"`
	NumEvents int                `json:"num_events"`
}

// Monitor aggregates operation counters and control-plane events. All
// methods are safe for concurrent use.
type Monitor struct {
	mu     sync.RWMutex
	opsMap map[string]*opState
	events []Event
	// LoadSource, when set, supplies per-node load for snapshots (the
	// executor wires it to Network.Utilization).
	loadSource func() map[string]float64
}

// New creates an empty monitor.
func New() *Monitor {
	return &Monitor{opsMap: map[string]*opState{}}
}

// SetLoadSource wires the node-utilization provider.
func (m *Monitor) SetLoadSource(f func() map[string]float64) {
	m.mu.Lock()
	m.loadSource = f
	m.mu.Unlock()
}

// Register starts tracking an operation process placed on a node.
func (m *Monitor) Register(op, node string, counters *ops.Counters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opsMap[op] = &opState{name: op, node: node, counters: counters}
}

// Unregister stops tracking an operation.
func (m *Monitor) Unregister(op string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.opsMap, op)
}

// Reassign records that an operation moved to a different node (the
// Figure 3 "when the assignment changes" events).
func (m *Monitor) Reassign(op, newNode string, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.opsMap[op]
	old := ""
	if ok {
		old = st.node
		st.node = newNode
	}
	m.events = append(m.events, Event{
		Time: at, Kind: EventReassigned, Op: op, Node: newNode,
		Detail: fmt.Sprintf("from %s", old),
	})
}

// RecordEvent appends a control-plane event to the log.
func (m *Monitor) RecordEvent(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// RecordFire adapts trigger fire events into the event log; pass it as the
// onFire hook when compiling dataflows.
func (m *Monitor) RecordFire(ev ops.FireEvent) {
	if !ev.Fired {
		return
	}
	m.RecordEvent(Event{
		Time: ev.WindowStart, Kind: EventTrigger, Op: ev.Op,
		Detail: fmt.Sprintf("targets=%v", ev.Targets),
	})
}

// SampleAll reads every registered counter and appends a rate sample.
// Call it periodically (live) or at window boundaries (replay).
func (m *Monitor) SampleAll(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.opsMap {
		in, out, dropped := st.counters.Snapshot()
		s := Sample{Time: now, In: in, Out: out, Dropped: dropped}
		if !st.lastSample.Time.IsZero() {
			dt := now.Sub(st.lastSample.Time).Seconds()
			if dt > 0 {
				s.RateIn = float64(in-st.lastSample.In) / dt
				s.RateOut = float64(out-st.lastSample.Out) / dt
			}
		}
		st.lastSample = s
		if len(st.ring) < ringSize {
			st.ring = append(st.ring, s)
		} else {
			st.ring[st.ringNext%ringSize] = s
			st.ringNext++
		}
	}
}

// Node returns the node an operation is currently assigned to.
func (m *Monitor) Node(op string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.opsMap[op]
	if !ok {
		return "", false
	}
	return st.node, true
}

// Events returns a copy of the event log.
func (m *Monitor) Events() []Event {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// EventsOfKind filters the event log.
func (m *Monitor) EventsOfKind(kind EventKind) []Event {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Event
	for _, e := range m.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// report builds one operation's snapshot entry. It is the single read path
// for op state: the Web-interface Snapshot and the /metrics collector both
// come through here, so the two surfaces can never drift. The caller holds
// m.mu (read suffices).
func (st *opState) report(includeSeries bool) OpReport {
	in, out, dropped := st.counters.Snapshot()
	or := OpReport{
		Name: st.name, Node: st.node,
		In: in, Out: out, Dropped: dropped,
		RateIn: st.lastSample.RateIn, RateOut: st.lastSample.RateOut,
	}
	if includeSeries {
		or.Series = append(or.Series, st.ring...)
	}
	return or
}

// RegisterMetrics exposes the monitor through reg as scrape-time series:
// per-op tuple counters and the latest ring rates (labels op, node), plus
// per-node load. The collector reads the same opState.report the JSON
// Snapshot uses — one snapshot API, no parallel code path to drift.
func (m *Monitor) RegisterMetrics(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.Collect("monitor", func(e *obs.Emitter) {
		m.mu.RLock()
		defer m.mu.RUnlock()
		for _, st := range m.opsMap {
			or := st.report(false)
			lb := obs.Labels("op", or.Name, "node", or.Node)
			e.Counter("streamloader_op_in_total", lb, float64(or.In))
			e.Counter("streamloader_op_out_total", lb, float64(or.Out))
			e.Counter("streamloader_op_dropped_total", lb, float64(or.Dropped))
			e.Gauge("streamloader_op_rate_in", lb, or.RateIn)
			e.Gauge("streamloader_op_rate_out", lb, or.RateOut)
		}
		if m.loadSource != nil {
			for node, load := range m.loadSource() {
				e.Gauge("streamloader_node_load", obs.Labels("node", node), load)
			}
		}
	})
	for _, d := range [][2]string{
		{"streamloader_op_in_total", "Tuples consumed by the operation."},
		{"streamloader_op_out_total", "Tuples produced by the operation."},
		{"streamloader_op_dropped_total", "Tuples dropped by the operation."},
		{"streamloader_op_rate_in", "Consumption rate at the last sample (tuples/s)."},
		{"streamloader_op_rate_out", "Production rate at the last sample (tuples/s)."},
		{"streamloader_node_load", "Per-node load fraction (0..1)."},
	} {
		reg.Describe(d[0], d[1])
	}
}

// Snapshot builds the report for the Web interface. includeSeries controls
// whether the per-op sample rings are attached (they are large).
func (m *Monitor) Snapshot(now time.Time, includeSeries bool) Report {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rep := Report{Time: now, NumEvents: len(m.events)}
	names := make([]string, 0, len(m.opsMap))
	for name := range m.opsMap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.Ops = append(rep.Ops, m.opsMap[name].report(includeSeries))
	}
	if m.loadSource != nil {
		rep.NodeLoad = m.loadSource()
		hot, hotLoad := "", -1.0
		keys := make([]string, 0, len(rep.NodeLoad))
		for id := range rep.NodeLoad {
			keys = append(keys, id)
		}
		sort.Strings(keys)
		for _, id := range keys {
			if rep.NodeLoad[id] > hotLoad {
				hot, hotLoad = id, rep.NodeLoad[id]
			}
		}
		rep.HotNode = hot
	}
	// Attach the tail of the event log.
	tail := len(m.events) - 50
	if tail < 0 {
		tail = 0
	}
	rep.Events = append(rep.Events, m.events[tail:]...)
	return rep
}
