package monitor

import (
	"bytes"
	"testing"
	"time"

	"streamloader/internal/obs"
	"streamloader/internal/ops"
)

// findSeries returns the value of the series with the given name and exact
// label set, failing the test when it is absent.
func findSeries(t *testing.T, series []obs.Series, name string, labels map[string]string) float64 {
	t.Helper()
	for _, s := range series {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("series %s%v not found", name, labels)
	return 0
}

// TestRegisterMetricsMatchesSnapshot pins the no-drift property: the
// /metrics collector and the JSON Snapshot read the same opState.report, so
// the numbers a scrape sees must be exactly the numbers the dashboard sees.
func TestRegisterMetricsMatchesSnapshot(t *testing.T) {
	m := New()
	var c1, c2 ops.Counters
	m.Register("filter1", "node-00", &c1)
	m.Register("agg1", "node-01", &c2)
	c1.In.Add(100)
	c1.Out.Add(60)
	c1.Dropped.Add(40)
	c2.In.Add(7)
	m.SampleAll(t0)
	c1.In.Add(50)
	c1.Out.Add(30)
	m.SampleAll(t0.Add(time.Second))
	m.SetLoadSource(func() map[string]float64 {
		return map[string]float64{"node-00": 0.25, "node-01": 0.75}
	})

	reg := obs.NewRegistry()
	m.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	rep := m.Snapshot(t0.Add(time.Second), false)
	if len(rep.Ops) != 2 {
		t.Fatalf("ops = %d", len(rep.Ops))
	}
	for _, op := range rep.Ops {
		lb := map[string]string{"op": op.Name, "node": op.Node}
		if got := findSeries(t, series, "streamloader_op_in_total", lb); got != float64(op.In) {
			t.Errorf("%s in: scrape %v, snapshot %d", op.Name, got, op.In)
		}
		if got := findSeries(t, series, "streamloader_op_out_total", lb); got != float64(op.Out) {
			t.Errorf("%s out: scrape %v, snapshot %d", op.Name, got, op.Out)
		}
		if got := findSeries(t, series, "streamloader_op_dropped_total", lb); got != float64(op.Dropped) {
			t.Errorf("%s dropped: scrape %v, snapshot %d", op.Name, got, op.Dropped)
		}
		if got := findSeries(t, series, "streamloader_op_rate_in", lb); got != op.RateIn {
			t.Errorf("%s rate_in: scrape %v, snapshot %v", op.Name, got, op.RateIn)
		}
		if got := findSeries(t, series, "streamloader_op_rate_out", lb); got != op.RateOut {
			t.Errorf("%s rate_out: scrape %v, snapshot %v", op.Name, got, op.RateOut)
		}
	}
	for node, load := range rep.NodeLoad {
		if got := findSeries(t, series, "streamloader_node_load", map[string]string{"node": node}); got != load {
			t.Errorf("node %s load: scrape %v, snapshot %v", node, got, load)
		}
	}
}

func TestRegisterMetricsNilSafe(t *testing.T) {
	var m *Monitor
	m.RegisterMetrics(obs.NewRegistry()) // must not panic
	New().RegisterMetrics(nil)           // must not panic
}
