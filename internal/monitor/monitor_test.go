package monitor

import (
	"strings"
	"testing"
	"time"

	"streamloader/internal/ops"
)

var t0 = time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)

func TestRegisterSampleSnapshot(t *testing.T) {
	m := New()
	var c1, c2 ops.Counters
	m.Register("filter1", "node-00", &c1)
	m.Register("agg1", "node-01", &c2)

	c1.In.Add(100)
	c1.Out.Add(60)
	c1.Dropped.Add(40)
	m.SampleAll(t0)

	c1.In.Add(50)
	c1.Out.Add(30)
	m.SampleAll(t0.Add(time.Second))

	rep := m.Snapshot(t0.Add(time.Second), true)
	if len(rep.Ops) != 2 {
		t.Fatalf("ops = %d", len(rep.Ops))
	}
	// Sorted by name: agg1 then filter1.
	if rep.Ops[0].Name != "agg1" || rep.Ops[1].Name != "filter1" {
		t.Errorf("order: %v, %v", rep.Ops[0].Name, rep.Ops[1].Name)
	}
	f := rep.Ops[1]
	if f.In != 150 || f.Out != 90 || f.Dropped != 40 {
		t.Errorf("totals: %+v", f)
	}
	// Rate over the second between samples: 50 in/s, 30 out/s.
	if f.RateIn != 50 || f.RateOut != 30 {
		t.Errorf("rates: in=%v out=%v", f.RateIn, f.RateOut)
	}
	if len(f.Series) != 2 {
		t.Errorf("series length = %d", len(f.Series))
	}
	// Without series.
	rep2 := m.Snapshot(t0.Add(time.Second), false)
	if len(rep2.Ops[1].Series) != 0 {
		t.Error("series must be omitted")
	}
}

func TestNodeAndReassign(t *testing.T) {
	m := New()
	var c ops.Counters
	m.Register("op1", "node-00", &c)
	if node, ok := m.Node("op1"); !ok || node != "node-00" {
		t.Error("Node")
	}
	m.Reassign("op1", "node-02", t0)
	if node, _ := m.Node("op1"); node != "node-02" {
		t.Error("Reassign must update the node")
	}
	evs := m.EventsOfKind(EventReassigned)
	if len(evs) != 1 || evs[0].Op != "op1" || evs[0].Node != "node-02" {
		t.Errorf("events: %v", evs)
	}
	if !strings.Contains(evs[0].Detail, "node-00") {
		t.Errorf("reassignment must mention the old node: %v", evs[0])
	}
	if _, ok := m.Node("ghost"); ok {
		t.Error("Node(ghost)")
	}
	m.Unregister("op1")
	if _, ok := m.Node("op1"); ok {
		t.Error("Unregister")
	}
}

func TestRecordFire(t *testing.T) {
	m := New()
	m.RecordFire(ops.FireEvent{Op: "tr", WindowStart: t0, Fired: true, Targets: []string{"rain-1"}})
	m.RecordFire(ops.FireEvent{Op: "tr", WindowStart: t0, Fired: false})
	evs := m.EventsOfKind(EventTrigger)
	if len(evs) != 1 {
		t.Fatalf("trigger events = %d, want 1 (non-fires are not logged)", len(evs))
	}
	if !strings.Contains(evs[0].Detail, "rain-1") {
		t.Error(evs[0].Detail)
	}
}

func TestLoadSourceAndHotNode(t *testing.T) {
	m := New()
	m.SetLoadSource(func() map[string]float64 {
		return map[string]float64{"node-00": 0.2, "node-01": 0.9, "node-02": 0.4}
	})
	rep := m.Snapshot(t0, false)
	if rep.HotNode != "node-01" {
		t.Errorf("hot node = %q", rep.HotNode)
	}
	if rep.NodeLoad["node-02"] != 0.4 {
		t.Error("node load missing")
	}
}

func TestEventLogTail(t *testing.T) {
	m := New()
	for i := 0; i < 80; i++ {
		m.RecordEvent(Event{Time: t0, Kind: EventDeployed, Op: "x"})
	}
	rep := m.Snapshot(t0, false)
	if rep.NumEvents != 80 {
		t.Errorf("NumEvents = %d", rep.NumEvents)
	}
	if len(rep.Events) != 50 {
		t.Errorf("event tail = %d, want 50", len(rep.Events))
	}
	if len(m.Events()) != 80 {
		t.Error("Events() must return the full log")
	}
}

func TestRingBounded(t *testing.T) {
	m := New()
	var c ops.Counters
	m.Register("op", "n", &c)
	for i := 0; i < ringSize*2; i++ {
		c.In.Add(1)
		m.SampleAll(t0.Add(time.Duration(i) * time.Second))
	}
	rep := m.Snapshot(t0, true)
	if len(rep.Ops[0].Series) != ringSize {
		t.Errorf("ring = %d, want %d", len(rep.Ops[0].Series), ringSize)
	}
}

func TestSampleRateZeroDt(t *testing.T) {
	m := New()
	var c ops.Counters
	m.Register("op", "n", &c)
	c.In.Add(10)
	m.SampleAll(t0)
	m.SampleAll(t0) // same instant: no division by zero
	rep := m.Snapshot(t0, false)
	if rep.Ops[0].RateIn != 0 {
		t.Errorf("rate = %v", rep.Ops[0].RateIn)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: t0, Kind: EventNodeDown, Node: "node-03", Detail: "injected"}
	s := e.String()
	for _, want := range []string{"node-down", "node-03", "injected"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
}

func TestConcurrentSampling(t *testing.T) {
	m := New()
	var c ops.Counters
	m.Register("op", "n", &c)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c.In.Add(1)
			m.SampleAll(t0.Add(time.Duration(i) * time.Millisecond))
		}
	}()
	for i := 0; i < 500; i++ {
		_ = m.Snapshot(t0, true)
		_ = m.Events()
	}
	<-done
}
