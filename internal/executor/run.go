package executor

import (
	"fmt"
	"sync"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/dsn"
	"streamloader/internal/ops"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// Run executes the deployment over the event-time range [from, to). With a
// virtual clock the run replays at full speed; with the wall clock it paces
// sources in real time. Run returns when the range completes or after Stop
// drains the dataflow. A deployment can Run again (after Reconfigure, or to
// extend the range): sources resume from where they stopped.
func (d *Deployment) Run(from, to time.Time) error {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return fmt.Errorf("executor: deployment already running")
	}
	d.running = true
	d.stopCh = make(chan struct{})
	d.stopOnce = sync.Once{}
	plan := d.plan
	placement := make(map[string]string, len(d.placement))
	for k, v := range d.placement {
		placement[k] = v
	}
	docName := d.doc.Name
	d.mu.Unlock()

	defer func() {
		d.mu.Lock()
		d.running = false
		d.stopCh = nil
		d.mu.Unlock()
	}()

	e := d.exec
	buffer := e.cfg.Buffer

	// One stream per edge, plus a router per producing node that fans its
	// output out to the edges and records cross-node transfers.
	edges := map[[2]string]*stream.Stream{}
	for _, pn := range plan.Nodes {
		for _, toID := range pn.Out {
			edges[[2]string{pn.ID, toID}] = stream.New(pn.ID+"->"+toID, pn.OutSchema, buffer)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(plan.Nodes)*2)
	fail := func(err error) {
		errs <- err
		d.Stop() // stop sources so the generation drains
	}

	// Event-time coordination across sources (see timeCoordinator). Register
	// every source before any starts so none races ahead.
	coord := newTimeCoordinator()
	for _, pn := range plan.Nodes {
		if pn.Kind == ops.KindSource {
			d.mu.RLock()
			start, resumed := d.sourcePos[pn.ID]
			d.mu.RUnlock()
			if !resumed || start.Before(from) {
				start = from
			}
			coord.register(pn.ID, start)
		}
	}
	// Release coordinator waiters when a stop is requested.
	d.mu.RLock()
	stopCh := d.stopCh
	d.mu.RUnlock()
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-stopCh:
		case <-stopWatch:
		}
		coord.stop()
	}()

	for _, pn := range plan.Nodes {
		pn := pn
		outs := make([]*stream.Stream, 0, len(pn.Out))
		outFlows := make([]string, 0, len(pn.Out))
		remote := make([]bool, 0, len(pn.Out))
		for _, toID := range pn.Out {
			outs = append(outs, edges[[2]string{pn.ID, toID}])
			port := 0
			if t := plan.Node(toID); t != nil {
				for i, from := range t.In {
					if from == pn.ID {
						port = i
					}
				}
			}
			outFlows = append(outFlows, dsn.FlowID(docName, pn.ID, toID, port))
			remote = append(remote, placement[pn.ID] != placement[toID])
		}
		ins := make([]*stream.Stream, 0, len(pn.In))
		for _, fromID := range pn.In {
			ins = append(ins, edges[[2]string{fromID, pn.ID}])
		}

		switch pn.Kind {
		case ops.KindSource:
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.runSource(pn, coord, outs, outFlows, remote, from, to)
			}()

		case ops.KindSink:
			sink, err := d.buildSink(pn, placement[pn.ID])
			if err != nil {
				// Construction failure before any goroutine: unwind inputs.
				for _, in := range ins {
					go in.Drain()
				}
				fail(err)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := d.runSink(pn, sink, ins); err != nil {
					fail(err)
				}
			}()

		default:
			mid := stream.New(pn.ID+".out", pn.OutSchema, buffer)
			wg.Add(2)
			go func() {
				defer wg.Done()
				err := pn.Op.Run(ins, mid)
				// Unblock upstream regardless of how Run ended.
				for _, in := range ins {
					in.Drain()
				}
				if err != nil {
					fail(fmt.Errorf("executor: operation %s: %w", pn.ID, err))
				}
			}()
			go func() {
				defer wg.Done()
				d.route(pn, mid, outs, outFlows, remote)
			}()
		}
	}

	wg.Wait()
	close(stopWatch)
	close(errs)
	return <-errs
}

// tupleBytes estimates the wire size of a tuple for transfer accounting.
func tupleBytes(s *stt.Schema) uint64 {
	return uint64(48 + 16*s.NumFields())
}

// runSource paces one sensor-bound source. A deactivated sensor (its stream
// stopped by a Trigger Off, or not yet started by a Trigger On) produces no
// tuples but still advances the watermark, so downstream windows keep
// flushing — exactly the "activation/deactivation of streams" semantics of
// Table 1's trigger operations.
func (d *Deployment) runSource(pn *dataflow.PlanNode, coord *timeCoordinator, outs []*stream.Stream, flows []string, remote []bool, from, to time.Time) {
	e := d.exec
	src, ok := e.cfg.Sensors(pn.SensorID)
	if !ok {
		// Sensor vanished between compile and run; emit nothing.
		coord.done(pn.ID)
		for _, o := range outs {
			o.Close()
		}
		return
	}
	defer coord.done(pn.ID)
	ctr := d.srcCtrs[pn.ID]
	period := src.Period()
	bytes := tupleBytes(src.Schema())

	d.mu.RLock()
	start, resumed := d.sourcePos[pn.ID]
	stopCh := d.stopCh
	d.mu.RUnlock()
	if !resumed || start.Before(from) {
		start = from
	}

	ts := start
	for ts.Before(to) {
		select {
		case <-stopCh:
			goto done
		default:
		}
		// Hold until every other source has reached this event time, then
		// pace: wall clock sleeps, virtual clock advances instantly.
		coord.wait(pn.ID, ts)
		if wait := ts.Sub(e.cfg.Clock.Now()); wait > 0 {
			e.cfg.Clock.Sleep(wait)
		}
		if e.cfg.Broker.IsActive(pn.SensorID) {
			tup := src.At(ts)
			if ctr != nil {
				ctr.In.Add(1)
				ctr.Out.Add(1)
			}
			for i, o := range outs {
				o.Send(tup)
				if remote[i] {
					e.cfg.Network.RecordTransfer(flows[i], 1, bytes)
				}
			}
		} else {
			if ctr != nil {
				ctr.In.Add(1)
				ctr.Dropped.Add(1)
			}
			// Generate-and-discard keeps the generator's internal state
			// aligned with event time across activation changes.
			_ = src.At(ts)
		}
		for _, o := range outs {
			o.SendWatermark(ts)
		}
		d.maybeSample(ts)
		ts = ts.Add(period)
	}
done:
	d.mu.Lock()
	d.sourcePos[pn.ID] = ts
	d.mu.Unlock()
	for _, o := range outs {
		o.Close()
	}
}

// route fans an operation's output to its consumers, recording cross-node
// transfers on the corresponding SCN flows.
func (d *Deployment) route(pn *dataflow.PlanNode, mid *stream.Stream, outs []*stream.Stream, flows []string, remote []bool) {
	e := d.exec
	bytes := uint64(0)
	if pn.OutSchema != nil {
		bytes = tupleBytes(pn.OutSchema)
	}
	for item := range mid.C {
		switch item.Kind {
		case stream.ItemTuple:
			for i, o := range outs {
				o.Send(item.Tuple)
				if remote[i] {
					e.cfg.Network.RecordTransfer(flows[i], 1, bytes)
				}
			}
		case stream.ItemWatermark:
			for _, o := range outs {
				o.SendWatermark(item.Watermark)
			}
		}
	}
	for _, o := range outs {
		o.Close()
	}
}

// runSink drains the sink's inputs into its destination. A Close failure is
// returned: for buffered sinks it means the final drain (or an asynchronous
// age flush) lost tuples, which must surface as a run error.
func (d *Deployment) runSink(pn *dataflow.PlanNode, sink Sink, ins []*stream.Stream) error {
	ctr := d.sinkCtrs[pn.ID]
	for _, in := range ins {
		for item := range in.C {
			if item.Kind != stream.ItemTuple {
				continue
			}
			if ctr != nil {
				ctr.In.Add(1)
			}
			if err := sink.Accept(item.Tuple); err != nil {
				if ctr != nil {
					ctr.Dropped.Add(1)
				}
				continue
			}
			if ctr != nil {
				ctr.Out.Add(1)
			}
		}
	}
	if err := sink.Close(); err != nil {
		return fmt.Errorf("executor: sink %s: %w", pn.ID, err)
	}
	return nil
}

// buildSink realizes a sink node's destination.
func (d *Deployment) buildSink(pn *dataflow.PlanNode, nodeID string) (Sink, error) {
	switch pn.SinkKind {
	case "collect":
		return d.collector(pn.ID), nil
	case "discard":
		return discardSink{}, nil
	default:
		if d.exec.cfg.Sinks == nil {
			return nil, fmt.Errorf("executor: sink %s wants %q but no sink factory is configured",
				pn.ID, pn.SinkKind)
		}
		var schema *stt.Schema
		if len(pn.In) > 0 {
			if up := d.plan.Node(pn.In[0]); up != nil {
				schema = up.OutSchema
			}
		}
		sink, err := d.exec.cfg.Sinks(pn.SinkKind, nodeID, schema)
		if err != nil {
			return nil, err
		}
		// Batch-capable destinations (the warehouse) get a buffering
		// front so the dataflow pays one shard lock round-trip per batch
		// instead of per tuple; Close drains, so Run still hands the
		// complete output downstream before returning. SinkBatch 0 sizes
		// the batches adaptively from the sink's observed arrival rate.
		if batch := d.exec.cfg.SinkBatch; batch >= 0 {
			if bs, ok := sink.(BatchSink); ok {
				return newBufferedSink(bs, batch, d.exec.cfg.SinkMaxAge), nil
			}
		}
		return sink, nil
	}
}

// maybeSample triggers a monitor sample when event time has advanced far
// enough since the last one.
func (d *Deployment) maybeSample(ts time.Time) {
	m := d.exec.cfg.Monitor
	if m == nil {
		return
	}
	d.mu.Lock()
	due := d.lastSample.IsZero() || ts.Sub(d.lastSample) >= d.exec.cfg.SampleEvery
	if due {
		d.lastSample = ts
	}
	d.mu.Unlock()
	if due {
		m.SampleAll(ts)
	}
}
