package executor

import (
	"sync"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/network"
	"streamloader/internal/sensor"
)

func TestCoordinatorLockstep(t *testing.T) {
	c := newTimeCoordinator()
	c.register("a", t0)
	c.register("b", t0)

	// "a" wants to advance one step past "b": it must block until "b"
	// catches up.
	released := make(chan struct{})
	go func() {
		c.wait("a", t0.Add(time.Second))
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("a advanced past b without waiting")
	case <-time.After(20 * time.Millisecond):
	}
	// b catches up: a releases.
	c.wait("b", t0.Add(time.Second))
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("a never released after b caught up")
	}
}

func TestCoordinatorDoneRemovesConstraint(t *testing.T) {
	c := newTimeCoordinator()
	c.register("a", t0)
	c.register("b", t0)
	released := make(chan struct{})
	go func() {
		c.wait("a", t0.Add(time.Hour))
		close(released)
	}()
	// b finishes: a is unconstrained.
	c.done("b")
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("done(b) did not release a")
	}
}

func TestCoordinatorStopReleasesAll(t *testing.T) {
	c := newTimeCoordinator()
	c.register("a", t0)
	c.register("b", t0)
	var wg sync.WaitGroup
	for _, id := range []string{"a", "b"} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.wait(id, t0.Add(time.Duration(len(id))*time.Hour))
		}()
	}
	c.stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not release waiters")
	}
}

func TestCoordinatorSingleSourceNeverBlocks(t *testing.T) {
	c := newTimeCoordinator()
	c.register("only", t0)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			c.wait("only", t0.Add(time.Duration(i)*time.Second))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single source blocked")
	}
}

func TestCoordinatorEmptyMinIsUnbounded(t *testing.T) {
	c := newTimeCoordinator()
	// No sources at all: wait must not block (min = +inf).
	done := make(chan struct{})
	go func() {
		c.wait("late", t0.Add(time.Hour))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait blocked with no other sources")
	}
}

func TestDeployFailsWhenBandwidthExhausted(t *testing.T) {
	// A two-node network whose single link cannot carry the flow's QoS
	// reservation: SCN flow allocation must fail and Deploy must surface it.
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	rebuilt, err := networkWithThinLinks()
	if err != nil {
		t.Fatal(err)
	}
	r.exec.cfg.Network = rebuilt
	r.exec.cfg.Strategy = &network.RoundRobin{} // force cross-node edges
	if _, err := r.exec.Deploy(simpleFlow()); err == nil {
		t.Error("deploy must fail when QoS reservations cannot be admitted")
	}
}

func TestRunTwiceConcurrentlyFails(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	done := make(chan error, 1)
	go func() { done <- d.Run(t0, t0.Add(time.Hour)) }()
	for len(d.Collected("out")) == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := d.Run(t0, t0.Add(time.Hour)); err == nil {
		t.Error("concurrent Run must fail")
	}
	d.Stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// networkWithThinLinks builds a 2-node network whose link bandwidth is below
// any flow's minimum reservation.
func networkWithThinLinks() (*network.Network, error) {
	n := network.New()
	for _, id := range []string{"node-00", "node-01"} {
		if err := n.AddNode(network.Node{ID: id, Capacity: 100, Region: geo.Osaka}); err != nil {
			return nil, err
		}
	}
	if err := n.AddLink("node-00", "node-01", 2, 1); err != nil { // 1 kbps
		return nil, err
	}
	return n, nil
}
