// Package executor realizes deployed dataflows: it compiles a conceptual
// dataflow, translates it to DSN, obtains a placement from the configured
// strategy, applies the SCN configuration requests to the simulated network,
// generates one process (goroutine) per operation, binds sources to sensors
// through the publish/subscribe layer, and coordinates execution — the
// "translator" plus "executor" modules of the paper's Figure 1.
//
// Execution is generation-based: a deployment runs a generation until the
// requested time range completes or a graceful stop is requested; stopping
// drains all in-flight tuples to the sinks (blocking operations flush), so
// reconfiguration (P3 operator hot-swap, plug-and-play sensors) and
// workload-driven migration lose no data.
package executor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/dsn"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/ops"
	"streamloader/internal/pubsub"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// SensorSource is the generator interface sources pull readings from;
// *sensor.Sensor satisfies it.
type SensorSource interface {
	ID() string
	Schema() *stt.Schema
	Period() time.Duration
	At(ts time.Time) *stt.Tuple
}

// SensorRegistry resolves sensor IDs to their generators.
type SensorRegistry func(id string) (SensorSource, bool)

// Sink consumes the tuples a dataflow delivers to a destination (the Event
// Data Warehouse, the visualization tool, ...).
type Sink interface {
	Accept(*stt.Tuple) error
	Close() error
}

// SinkFactory builds the sink for a sink node. It is consulted for
// "warehouse" and "viz" sinks; "collect" and "discard" are built in.
type SinkFactory func(sinkKind, nodeID string, schema *stt.Schema) (Sink, error)

// Config assembles an executor.
type Config struct {
	// Network is the programmable network to deploy into.
	Network *network.Network
	// Broker is the pub/sub layer for sensor discovery and activation.
	Broker *pubsub.Broker
	// Strategy decides operator placement. Default: least-loaded.
	Strategy network.Strategy
	// Monitor collects Figure 3 statistics. Optional.
	Monitor *monitor.Monitor
	// Clock paces sources: stream.WallClock for live runs,
	// *stream.VirtualClock for replay. Default: virtual clock.
	Clock stream.Clock
	// Sensors resolves source bindings.
	Sensors SensorRegistry
	// Sinks builds warehouse/viz sinks. Optional.
	Sinks SinkFactory
	// Buffer is the stream buffer size (default stream.DefaultBuffer).
	Buffer int
	// SampleEvery is the event-time interval between monitor samples
	// (default 1s).
	SampleEvery time.Duration
	// SinkBatch sizes the buffering applied in front of factory sinks that
	// support batched accepts (the warehouse). 0 (the default) sizes each
	// sink's batches adaptively from its observed arrival rate (an EWMA of
	// tuples per flush interval, clamped to [32, 4096]); a positive value
	// fixes the batch size; negative disables sink buffering.
	SinkBatch int
	// SinkMaxAge bounds how long a tuple may sit in a sink buffer before
	// an age-based flush (default 50ms).
	SinkMaxAge time.Duration
}

// Executor deploys dataflows.
type Executor struct {
	cfg Config
}

// New validates the configuration.
func New(cfg Config) (*Executor, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("executor: needs a network")
	}
	if cfg.Broker == nil {
		return nil, fmt.Errorf("executor: needs a broker")
	}
	if cfg.Sensors == nil {
		return nil, fmt.Errorf("executor: needs a sensor registry")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = network.LeastLoaded{}
	}
	if cfg.Clock == nil {
		cfg.Clock = stream.NewVirtualClock(time.Unix(0, 0))
	}
	if cfg.Buffer == 0 {
		cfg.Buffer = stream.DefaultBuffer
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	if cfg.SinkMaxAge <= 0 {
		cfg.SinkMaxAge = 50 * time.Millisecond
	}
	return &Executor{cfg: cfg}, nil
}

// opWeight estimates the processing cost of a plan node for placement.
func opWeight(kind ops.Kind) float64 {
	switch {
	case kind == ops.KindSource:
		return 1
	case kind == ops.KindSink:
		return 0.5
	case kind.Blocking():
		return 3
	default:
		return 1
	}
}

// Deployment is a dataflow deployed onto the network.
type Deployment struct {
	exec *Executor

	mu        sync.RWMutex
	spec      *dataflow.Spec
	plan      *dataflow.Plan
	doc       *dsn.Document
	placement map[string]string
	reqs      []dsn.Request
	running   bool

	sourcePos  map[string]time.Time // resume position per source node
	collectors map[string]*collectSink
	fires      []ops.FireEvent
	srcCtrs    map[string]*ops.Counters
	sinkCtrs   map[string]*ops.Counters

	lastSample time.Time
	stopCh     chan struct{}
	stopOnce   sync.Once
}

// Deploy compiles, translates, places and configures the dataflow. Sources
// whose sensors are targets of a Trigger On start deactivated (the trigger
// will start them); every other source sensor is activated.
func (e *Executor) Deploy(spec *dataflow.Spec) (*Deployment, error) {
	d := &Deployment{
		exec:       e,
		spec:       spec,
		sourcePos:  map[string]time.Time{},
		collectors: map[string]*collectSink{},
		srcCtrs:    map[string]*ops.Counters{},
		sinkCtrs:   map[string]*ops.Counters{},
	}
	if err := d.compileAndConfigure(spec); err != nil {
		return nil, err
	}
	if m := e.cfg.Monitor; m != nil {
		m.SetLoadSource(e.cfg.Network.Utilization)
		m.RecordEvent(monitor.Event{
			Time: e.cfg.Clock.Now(), Kind: monitor.EventDeployed,
			Detail: fmt.Sprintf("dataflow %s: %d services", spec.Name, len(d.plan.Nodes)),
		})
	}
	return d, nil
}

// compileAndConfigure (re)builds plan, DSN, placement and flows for a spec.
// Existing placements are kept for nodes that survive reconfiguration.
func (d *Deployment) compileAndConfigure(spec *dataflow.Spec) error {
	e := d.exec
	resolver := dataflow.ResolverFunc(func(id string) (*stt.Schema, bool) {
		if meta, ok := e.cfg.Broker.Get(id); ok {
			return meta.Schema, true
		}
		return nil, false
	})
	onFire := func(ev ops.FireEvent) {
		d.mu.Lock()
		d.fires = append(d.fires, ev)
		d.mu.Unlock()
		if ev.Fired && e.cfg.Monitor != nil {
			e.cfg.Monitor.RecordFire(ev)
		}
	}
	plan, diags := dataflow.Compile(spec, resolver, e.cfg.Broker, onFire)
	if diags.HasErrors() {
		return fmt.Errorf("executor: dataflow invalid: %v", diags)
	}
	doc, err := dsn.Translate(spec, plan)
	if err != nil {
		return err
	}

	// Placement: keep surviving assignments, place new services.
	old := d.placement
	placement := map[string]string{}
	for _, pn := range plan.Nodes {
		if node, ok := old[pn.ID]; ok && !e.cfg.Network.IsDown(node) {
			placement[pn.ID] = node
			continue
		}
		info := network.ServiceInfo{
			Name: pn.ID, Kind: string(pn.Kind), Weight: opWeight(pn.Kind),
		}
		if pn.Kind == ops.KindSource {
			if meta, ok := e.cfg.Broker.Get(pn.SensorID); ok {
				info.PreferredNode = meta.NodeID
			}
		}
		node, err := e.cfg.Strategy.Place(info, e.cfg.Network)
		if err != nil {
			return fmt.Errorf("executor: placing %s: %w", pn.ID, err)
		}
		placement[pn.ID] = node
	}
	// Release load of vanished services.
	for id, node := range old {
		if _, still := placement[id]; !still {
			if pn := d.plan.Node(id); pn != nil {
				_ = e.cfg.Network.AddLoad(node, -opWeight(pn.Kind))
			}
		}
	}

	// Activation policy: sensors that are targets of a Trigger On start
	// deactivated (the trigger will start them); every other source sensor
	// is activated. Applied on deploy and on every reconfiguration, so
	// newly plugged-in sensors start flowing (P3).
	onTargets := map[string]bool{}
	for _, n := range spec.Nodes {
		if ops.Kind(n.Kind) == ops.KindTriggerOn {
			for _, t := range n.Targets {
				onTargets[t] = true
			}
		}
	}
	for _, pn := range plan.Nodes {
		if pn.Kind != ops.KindSource {
			continue
		}
		if onTargets[pn.SensorID] {
			// Only force-deactivate on first sight; a later reconfiguration
			// must not undo an activation the trigger already performed.
			if _, seen := old[pn.ID]; !seen {
				if err := e.cfg.Broker.Deactivate(pn.SensorID); err != nil {
					return fmt.Errorf("executor: %w", err)
				}
			}
		} else {
			if err := e.cfg.Broker.Activate(pn.SensorID); err != nil {
				return fmt.Errorf("executor: %w", err)
			}
		}
	}

	reqs, err := dsn.ConfigRequests(doc, placement)
	if err != nil {
		return err
	}
	// Apply SCN: (re)allocate one flow per link with its QoS.
	for _, id := range e.cfg.Network.Flows() {
		if d.flowBelongs(id) {
			_ = e.cfg.Network.ReleaseFlow(id)
		}
	}
	for _, l := range doc.Links {
		flowID := dsn.FlowID(doc.Name, l.From, l.To, l.Port)
		if _, err := e.cfg.Network.AllocateFlow(flowID, placement[l.From], placement[l.To], l.QoS); err != nil {
			return err
		}
	}

	d.mu.Lock()
	d.spec = spec
	d.plan = plan
	d.doc = doc
	d.placement = placement
	d.reqs = reqs
	d.mu.Unlock()

	// (Re-)register operations with the monitor.
	if m := e.cfg.Monitor; m != nil {
		for _, pn := range plan.Nodes {
			switch pn.Kind {
			case ops.KindSource:
				c := d.srcCtrs[pn.ID]
				if c == nil {
					c = &ops.Counters{}
					d.srcCtrs[pn.ID] = c
				}
				m.Register(pn.ID, placement[pn.ID], c)
			case ops.KindSink:
				c := d.sinkCtrs[pn.ID]
				if c == nil {
					c = &ops.Counters{}
					d.sinkCtrs[pn.ID] = c
				}
				m.Register(pn.ID, placement[pn.ID], c)
			default:
				m.Register(pn.ID, placement[pn.ID], pn.Op.Counters())
			}
		}
	}
	return nil
}

// flowBelongs reports whether a flow ID was allocated for this deployment.
func (d *Deployment) flowBelongs(flowID string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.doc == nil {
		return false
	}
	prefix := d.doc.Name + "/"
	return len(flowID) > len(prefix) && flowID[:len(prefix)] == prefix
}

// DSNText returns the dataflow's DSN document (shown in the P2 demo step).
func (d *Deployment) DSNText() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.doc.String()
}

// SCNScript returns the SCN configuration script applied at deployment.
func (d *Deployment) SCNScript() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return dsn.Script(d.reqs)
}

// Placement returns a copy of the service → node assignment.
func (d *Deployment) Placement() map[string]string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]string, len(d.placement))
	for k, v := range d.placement {
		out[k] = v
	}
	return out
}

// Collected returns the tuples gathered by a "collect" sink (merged across
// runs; each sink buffers under its own lock).
func (d *Deployment) Collected(sinkID string) []*stt.Tuple {
	d.mu.RLock()
	c := d.collectors[sinkID]
	d.mu.RUnlock()
	if c == nil {
		return []*stt.Tuple{}
	}
	return c.snapshot()
}

// collector returns the named collect sink, creating it on first use so
// collected tuples accumulate across runs of the same deployment.
func (d *Deployment) collector(sinkID string) *collectSink {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.collectors[sinkID]
	if c == nil {
		c = &collectSink{}
		d.collectors[sinkID] = c
	}
	return c
}

// Fires returns the trigger decisions observed so far.
func (d *Deployment) Fires() []ops.FireEvent {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]ops.FireEvent, len(d.fires))
	copy(out, d.fires)
	return out
}

// Stop requests a graceful stop of the running generation: sources cease
// emitting, in-flight tuples drain to the sinks, Run returns.
func (d *Deployment) Stop() {
	d.mu.RLock()
	ch := d.stopCh
	d.mu.RUnlock()
	if ch != nil {
		d.stopOnce.Do(func() { close(ch) })
	}
}

// Reconfigure replaces the dataflow spec (operator hot-swap, added or
// removed sensors — the P3 walkthrough). It must be called between runs; the
// next Run resumes sources from their saved positions, so no tuples are
// lost or duplicated across the swap.
func (d *Deployment) Reconfigure(spec *dataflow.Spec) error {
	d.mu.RLock()
	running := d.running
	d.mu.RUnlock()
	if running {
		return fmt.Errorf("executor: stop the deployment before reconfiguring")
	}
	if err := d.compileAndConfigure(spec); err != nil {
		return err
	}
	if m := d.exec.cfg.Monitor; m != nil {
		m.RecordEvent(monitor.Event{
			Time: d.exec.cfg.Clock.Now(), Kind: monitor.EventSwapped,
			Detail: fmt.Sprintf("dataflow %s reconfigured", spec.Name),
		})
	}
	return nil
}

// SwapOperator replaces one node's configuration in place (same ID).
func (d *Deployment) SwapOperator(ns dataflow.NodeSpec) error {
	d.mu.RLock()
	spec := *d.spec
	d.mu.RUnlock()
	nodes := make([]dataflow.NodeSpec, len(spec.Nodes))
	copy(nodes, spec.Nodes)
	found := false
	for i := range nodes {
		if nodes[i].ID == ns.ID {
			nodes[i] = ns
			found = true
		}
	}
	if !found {
		return fmt.Errorf("executor: no node %q to swap", ns.ID)
	}
	spec.Nodes = nodes
	return d.Reconfigure(&spec)
}

// Migration describes one operator move decided by Rebalance.
type Migration struct {
	Op   string
	From string
	To   string
}

// Rebalance performs one workload-driven reassignment pass: if the hottest
// node's utilization exceeds the coldest's by more than 0.25, the heaviest
// movable operation (sources stay pinned to their sensor's node) migrates to
// the coldest node and its flows are re-allocated. Safe to call while
// running; the data plane observes the new placement immediately through
// the flow table.
func (d *Deployment) Rebalance(at time.Time) ([]Migration, error) {
	e := d.exec
	util := e.cfg.Network.Utilization()
	if len(util) < 2 {
		return nil, nil
	}
	ids := make([]string, 0, len(util))
	for id := range util {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	hot, cold := ids[0], ids[0]
	for _, id := range ids {
		if e.cfg.Network.IsDown(id) {
			continue
		}
		if util[id] > util[hot] {
			hot = id
		}
		if util[id] < util[cold] {
			cold = id
		}
	}
	if util[hot]-util[cold] <= 0.25 {
		return nil, nil
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	// Heaviest movable op on the hot node.
	var victim *dataflow.PlanNode
	for _, pn := range d.plan.Nodes {
		if d.placement[pn.ID] != hot {
			continue
		}
		if pn.Kind == ops.KindSource || pn.Kind == ops.KindSink {
			continue
		}
		if victim == nil || opWeight(pn.Kind) > opWeight(victim.Kind) {
			victim = pn
		}
	}
	if victim == nil {
		return nil, nil
	}
	w := opWeight(victim.Kind)
	// Only migrate when the move strictly improves balance: the cold node
	// must stay below the hot node's current utilization after absorbing the
	// operator. This prevents ping-ponging between nodes.
	coldNode, coldLoad, ok := e.cfg.Network.Node(cold)
	if !ok || (coldLoad+w)/coldNode.Capacity >= util[hot] {
		return nil, nil
	}
	if err := e.cfg.Network.AddLoad(hot, -w); err != nil {
		return nil, err
	}
	if err := e.cfg.Network.AddLoad(cold, w); err != nil {
		return nil, err
	}
	d.placement[victim.ID] = cold
	// Re-allocate the victim's flows.
	if err := d.reallocFlowsLocked(victim.ID); err != nil {
		// Revert.
		d.placement[victim.ID] = hot
		_ = e.cfg.Network.AddLoad(cold, -w)
		_ = e.cfg.Network.AddLoad(hot, w)
		_ = d.reallocFlowsLocked(victim.ID)
		return nil, err
	}
	if m := e.cfg.Monitor; m != nil {
		m.Reassign(victim.ID, cold, at)
	}
	return []Migration{{Op: victim.ID, From: hot, To: cold}}, nil
}

// reallocFlowsLocked re-establishes the flows of every link touching the
// given service under the current placement. Caller holds d.mu.
func (d *Deployment) reallocFlowsLocked(service string) error {
	e := d.exec
	for _, l := range d.doc.Links {
		if l.From != service && l.To != service {
			continue
		}
		id := dsn.FlowID(d.doc.Name, l.From, l.To, l.Port)
		_ = e.cfg.Network.ReleaseFlow(id)
		if _, err := e.cfg.Network.AllocateFlow(id, d.placement[l.From], d.placement[l.To], l.QoS); err != nil {
			return err
		}
	}
	return nil
}

// Undeploy releases the deployment's flows and placement load and
// unregisters its operations from the monitor.
func (d *Deployment) Undeploy() {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.exec
	for _, l := range d.doc.Links {
		_ = e.cfg.Network.ReleaseFlow(dsn.FlowID(d.doc.Name, l.From, l.To, l.Port))
	}
	for id, node := range d.placement {
		if pn := d.plan.Node(id); pn != nil {
			_ = e.cfg.Network.AddLoad(node, -opWeight(pn.Kind))
		}
		if m := e.cfg.Monitor; m != nil {
			m.Unregister(id)
		}
	}
	if m := e.cfg.Monitor; m != nil {
		m.RecordEvent(monitor.Event{
			Time: e.cfg.Clock.Now(), Kind: monitor.EventStopped,
			Detail: fmt.Sprintf("dataflow %s undeployed", d.spec.Name),
		})
	}
}
