package executor

import (
	"sync"
	"time"

	"streamloader/internal/stt"
)

// collectSink gathers tuples into the deployment for inspection, the
// destination tests and the design environment use. Each sink owns its
// buffer and lock, so parallel sinks of one deployment never contend on
// the shared Deployment.mu; readers merge on read via Collected.
type collectSink struct {
	mu  sync.Mutex
	buf []*stt.Tuple
}

// Accept stores the tuple.
func (s *collectSink) Accept(t *stt.Tuple) error {
	s.mu.Lock()
	s.buf = append(s.buf, t)
	s.mu.Unlock()
	return nil
}

// Close is a no-op; collected tuples stay available after the run.
func (s *collectSink) Close() error { return nil }

// snapshot copies the collected tuples.
func (s *collectSink) snapshot() []*stt.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*stt.Tuple, len(s.buf))
	copy(out, s.buf)
	return out
}

// discardSink drops everything (throughput benchmarks).
type discardSink struct{}

// Accept drops the tuple.
func (discardSink) Accept(*stt.Tuple) error { return nil }

// Close is a no-op.
func (discardSink) Close() error { return nil }

// BatchSink is the optional capability of a Sink to accept many tuples in
// one call (the warehouse implements it via AppendBatch). Factory sinks
// exposing it are wrapped in a buffering sink, so dataflows stop paying
// one sink lock round-trip per tuple.
type BatchSink interface {
	Sink
	AcceptBatch([]*stt.Tuple) error
}

// bufferedSink batches tuples in front of a BatchSink. It flushes when the
// buffer reaches size tuples or on an age tick (so a stalled stream still
// lands within ~2×maxAge of wall time), and drains on Close, so a completed
// run always observes its full output downstream.
type bufferedSink struct {
	dst      BatchSink
	size     int
	ticker   *time.Ticker
	done     chan struct{}
	loopDone chan struct{}

	mu       sync.Mutex
	buf      []*stt.Tuple
	flushErr error // first asynchronous flush failure, surfaced by Close
}

// newBufferedSink wraps dst; size and maxAge must be positive.
func newBufferedSink(dst BatchSink, size int, maxAge time.Duration) *bufferedSink {
	b := &bufferedSink{
		dst:      dst,
		size:     size,
		ticker:   time.NewTicker(maxAge),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go b.ageLoop()
	return b
}

// ageLoop flushes any buffered tuples on each tick until Close.
func (b *bufferedSink) ageLoop() {
	defer close(b.loopDone)
	for {
		select {
		case <-b.done:
			return
		case <-b.ticker.C:
			if err := b.flush(); err != nil {
				b.mu.Lock()
				if b.flushErr == nil {
					b.flushErr = err
				}
				b.mu.Unlock()
			}
		}
	}
}

// Accept buffers the tuple, flushing the batch once it reaches size. A
// flush failure is returned AND recorded in flushErr: the whole batch is
// lost, not just this tuple, so the loss must also surface as a run error
// when Close propagates it.
func (b *bufferedSink) Accept(t *stt.Tuple) error {
	b.mu.Lock()
	b.buf = append(b.buf, t)
	if len(b.buf) < b.size {
		b.mu.Unlock()
		return nil
	}
	batch := b.buf
	b.buf = nil
	b.mu.Unlock()
	if err := b.dst.AcceptBatch(batch); err != nil {
		b.mu.Lock()
		if b.flushErr == nil {
			b.flushErr = err
		}
		b.mu.Unlock()
		return err
	}
	return nil
}

// flush hands any buffered tuples to the destination.
func (b *bufferedSink) flush() error {
	b.mu.Lock()
	batch := b.buf
	b.buf = nil
	b.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	return b.dst.AcceptBatch(batch)
}

// Close drains the buffer and closes the destination. It waits out any
// in-flight age flush first, so every accepted tuple has reached the
// destination by the time Close returns.
func (b *bufferedSink) Close() error {
	b.ticker.Stop()
	close(b.done)
	<-b.loopDone
	err := b.flush()
	b.mu.Lock()
	if err == nil {
		err = b.flushErr
	}
	b.mu.Unlock()
	if cerr := b.dst.Close(); err == nil {
		err = cerr
	}
	return err
}
