package executor

import (
	"sync"
	"time"

	"streamloader/internal/stt"
)

// collectSink gathers tuples into the deployment for inspection, the
// destination tests and the design environment use. Each sink owns its
// buffer and lock, so parallel sinks of one deployment never contend on
// the shared Deployment.mu; readers merge on read via Collected.
type collectSink struct {
	mu  sync.Mutex
	buf []*stt.Tuple
}

// Accept stores the tuple.
func (s *collectSink) Accept(t *stt.Tuple) error {
	s.mu.Lock()
	s.buf = append(s.buf, t)
	s.mu.Unlock()
	return nil
}

// Close is a no-op; collected tuples stay available after the run.
func (s *collectSink) Close() error { return nil }

// snapshot copies the collected tuples.
func (s *collectSink) snapshot() []*stt.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*stt.Tuple, len(s.buf))
	copy(out, s.buf)
	return out
}

// discardSink drops everything (throughput benchmarks).
type discardSink struct{}

// Accept drops the tuple.
func (discardSink) Accept(*stt.Tuple) error { return nil }

// Close is a no-op.
func (discardSink) Close() error { return nil }

// BatchSink is the optional capability of a Sink to accept many tuples in
// one call (the warehouse implements it via AppendBatch). Factory sinks
// exposing it are wrapped in a buffering sink, so dataflows stop paying
// one sink lock round-trip per tuple.
type BatchSink interface {
	Sink
	AcceptBatch([]*stt.Tuple) error
}

// bufferedSink batches tuples in front of a BatchSink. It flushes when the
// buffer reaches the batch size or on an age tick (so a stalled stream
// still lands within ~2×maxAge of wall time), and drains on Close, so a
// completed run always observes its full output downstream.
//
// The batch size is either fixed (a positive size at construction) or
// adaptive: sized from the observed arrival rate, as an EWMA of tuples
// accepted per age interval, clamped to [minAdaptiveBatch,
// maxAdaptiveBatch]. A trickle stream then flushes in small, low-latency
// batches instead of waiting out the age tick at a fixed 256, while a
// heavy stream grows its batches until each flush amortizes the
// destination's lock round-trip over thousands of tuples.
//
// A failed flush loses nothing: the batch is re-buffered and retried on the
// next size trigger, age tick or Close, so a transient destination error is
// invisible once the tuples eventually land. Only when the destination
// keeps failing does the sink shed load — Accept rejects new tuples once
// the backlog reaches maxBacklog flushes' worth — and Close reports the
// failure rather than success.
type bufferedSink struct {
	dst      BatchSink
	ticker   *time.Ticker
	done     chan struct{}
	loopDone chan struct{}

	// flushMu serializes flushes end to end (take buffer, hand to dst,
	// re-buffer on failure), so a failed batch cannot interleave with a
	// concurrent successful flush of newer tuples — which would both
	// reorder delivery and clear flushErr while the failed batch is still
	// parked in buf, disarming the maxBacklog shed gate.
	flushMu sync.Mutex

	mu       sync.Mutex
	buf      []*stt.Tuple
	size     int // current flush threshold; fixed, or retuned per age tick
	adaptive bool
	accepted int     // tuples accepted since the last rate sample
	rate     float64 // EWMA of tuples per age interval
	flushErr error   // latest unresolved flush failure; cleared when the backlog lands
	// failedAccepts counts Accepts since the last retry while flushErr is
	// set: the destination is retried once every size accepts — not per
	// tuple (a retry storm), and not only on age ticks (which would keep a
	// full backlog shedding long after the destination recovers).
	failedAccepts int
}

// maxBacklog bounds the re-buffered backlog to this many full batches
// before Accept starts shedding.
const maxBacklog = 4

// Adaptive batch sizing bounds and smoothing.
const (
	minAdaptiveBatch = 32
	maxAdaptiveBatch = 4096
	// adaptiveStart seeds the EWMA before the first rate sample; it is the
	// old fixed default, so a sink behaves identically until it has
	// observed real traffic.
	adaptiveStart = 256
	// adaptiveAlpha weights the newest interval in the EWMA: high enough
	// to follow a workload shift within a few age ticks, low enough that
	// one bursty interval does not whipsaw the batch size.
	adaptiveAlpha = 0.3
)

// newBufferedSink wraps dst; maxAge must be positive. A positive size fixes
// the flush threshold; size <= 0 selects adaptive sizing from the observed
// arrival rate.
func newBufferedSink(dst BatchSink, size int, maxAge time.Duration) *bufferedSink {
	b := &bufferedSink{
		dst:      dst,
		size:     size,
		ticker:   time.NewTicker(maxAge),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if size <= 0 {
		b.adaptive = true
		b.size = adaptiveStart
		b.rate = adaptiveStart
	}
	go b.ageLoop()
	return b
}

// ageLoop flushes any buffered tuples on each tick until Close; each tick
// also retries a re-buffered backlog and, in adaptive mode, retunes the
// batch size from the interval's arrival count. flush records any failure
// itself.
func (b *bufferedSink) ageLoop() {
	defer close(b.loopDone)
	for {
		select {
		case <-b.done:
			return
		case <-b.ticker.C:
			b.adapt()
			_ = b.flush()
		}
	}
}

// adapt folds the last interval's arrivals into the rate EWMA and resizes
// the flush threshold to it, clamped. One batch per age interval is the
// equilibrium: slower streams flush by age at whatever has arrived, faster
// ones flush by size a few times per tick with maximal batches.
func (b *bufferedSink) adapt() {
	if !b.adaptive {
		return
	}
	b.mu.Lock()
	n := b.accepted
	b.accepted = 0
	b.rate = adaptiveAlpha*float64(n) + (1-adaptiveAlpha)*b.rate
	size := int(b.rate + 0.5)
	if size < minAdaptiveBatch {
		size = minAdaptiveBatch
	}
	if size > maxAdaptiveBatch {
		size = maxAdaptiveBatch
	}
	b.size = size
	b.mu.Unlock()
}

// Accept buffers the tuple, flushing the batch once it reaches size. A
// flush failure keeps the batch buffered for a later retry, so nothing is
// lost and Accept stays nil; only when the destination keeps failing and
// the backlog is full does Accept shed the tuple, returning the recorded
// error so the caller counts the drop.
func (b *bufferedSink) Accept(t *stt.Tuple) error {
	b.mu.Lock()
	b.accepted++ // arrival-rate sample for adaptive sizing, shed or not
	if b.flushErr != nil {
		b.failedAccepts++
		retry := b.failedAccepts >= b.size
		if retry {
			b.failedAccepts = 0
		}
		full := len(b.buf) >= maxBacklog*b.size
		if !full {
			b.buf = append(b.buf, t)
		}
		err := b.flushErr
		b.mu.Unlock()
		if retry && b.flush() == nil {
			if full {
				// The backlog just drained: room for the shed tuple after all.
				b.mu.Lock()
				b.buf = append(b.buf, t)
				b.mu.Unlock()
			}
			return nil
		}
		if full {
			// Re-check before shedding: a concurrent flush (age tick or
			// another Accept's retry) may have drained the backlog since
			// the snapshot above, in which case the tuple fits after all.
			b.mu.Lock()
			if b.flushErr == nil || len(b.buf) < maxBacklog*b.size {
				b.buf = append(b.buf, t)
				b.mu.Unlock()
				return nil
			}
			err = b.flushErr
			b.mu.Unlock()
			return err
		}
		return nil
	}
	b.buf = append(b.buf, t)
	ripe := len(b.buf) >= b.size
	b.mu.Unlock()
	if ripe {
		_ = b.flush() // failure is re-buffered and recorded, not a loss
	}
	return nil
}

// flush hands the buffered tuples to the destination. On failure the batch
// is put back at the front of the buffer — preserving accept order — and
// the error is recorded for Close; on success any recorded error is
// cleared, because the tuples it covered have now landed.
func (b *bufferedSink) flush() error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	batch := b.buf
	b.buf = nil
	b.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if err := b.dst.AcceptBatch(batch); err != nil {
		b.mu.Lock()
		b.buf = append(batch, b.buf...)
		b.flushErr = err
		b.mu.Unlock()
		return err
	}
	b.mu.Lock()
	b.flushErr = nil
	b.mu.Unlock()
	return nil
}

// Close drains the buffer and closes the destination. It waits out any
// in-flight age flush first, so every accepted tuple has reached the
// destination by the time Close returns. The final drain is one last retry
// of any failed backlog: if it succeeds, the earlier failure is moot; if
// not, Close reports it instead of success.
func (b *bufferedSink) Close() error {
	b.ticker.Stop()
	close(b.done)
	<-b.loopDone
	err := b.flush()
	b.mu.Lock()
	if err == nil {
		err = b.flushErr
	}
	b.mu.Unlock()
	if cerr := b.dst.Close(); err == nil {
		err = cerr
	}
	return err
}
