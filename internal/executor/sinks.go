package executor

import "streamloader/internal/stt"

// collectSink gathers tuples into the deployment for inspection, the
// destination tests and the design environment use.
type collectSink struct {
	d  *Deployment
	id string
}

// Accept stores the tuple.
func (s *collectSink) Accept(t *stt.Tuple) error {
	s.d.mu.Lock()
	s.d.collected[s.id] = append(s.d.collected[s.id], t)
	s.d.mu.Unlock()
	return nil
}

// Close is a no-op; collected tuples stay available after the run.
func (s *collectSink) Close() error { return nil }

// discardSink drops everything (throughput benchmarks).
type discardSink struct{}

// Accept drops the tuple.
func (discardSink) Accept(*stt.Tuple) error { return nil }

// Close is a no-op.
func (discardSink) Close() error { return nil }
