package executor

import (
	"strings"
	"testing"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
)

var t0 = time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)

// rig bundles a complete test environment: network, broker, sensors,
// executor.
type rig struct {
	net     *network.Network
	broker  *pubsub.Broker
	sensors map[string]*sensor.Sensor
	mon     *monitor.Monitor
	exec    *Executor
	clock   *stream.VirtualClock
}

func newRig(t *testing.T, nodes int, sensorSpecs []sensor.Spec) *rig {
	return newRigCapacity(t, nodes, 100, sensorSpecs)
}

func newRigCapacity(t *testing.T, nodes int, capacity float64, sensorSpecs []sensor.Spec) *rig {
	t.Helper()
	net, err := network.Star(network.TopologyConfig{
		Nodes: nodes, Capacity: capacity, LatencyMS: 2, BandwidthKbps: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker("test")
	sensors := map[string]*sensor.Sensor{}
	for _, spec := range sensorSpecs {
		if spec.NodeID == "" {
			id, err := net.NodeForLocation(spec.Location)
			if err != nil {
				t.Fatal(err)
			}
			spec.NodeID = id
		}
		s, err := sensor.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		sensors[s.ID()] = s
		if err := broker.Publish(s.Meta()); err != nil {
			t.Fatal(err)
		}
	}
	clock := stream.NewVirtualClock(t0)
	mon := monitor.New()
	exec, err := New(Config{
		Network: net,
		Broker:  broker,
		Monitor: mon,
		Clock:   clock,
		Sensors: func(id string) (SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{net: net, broker: broker, sensors: sensors, mon: mon, exec: exec, clock: clock}
}

func tempSpec(id string) sensor.Spec {
	return sensor.Spec{
		ID: id, Type: sensor.TypeTemperature,
		Location: geo.OsakaCenter, Seed: 42,
		FrequencyHz: 1, // 1 Hz for fast tests
	}
}

func simpleFlow() *dataflow.Spec {
	return &dataflow.Spec{
		Name: "simple",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "all", Kind: "filter", Cond: "temperature > -100"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "src", To: "all"},
			{From: "all", To: "out"},
		},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	net, _ := network.Star(network.TopologyConfig{Nodes: 1})
	if _, err := New(Config{Network: net}); err == nil {
		t.Error("missing broker must fail")
	}
	if _, err := New(Config{Network: net, Broker: pubsub.NewBroker("x")}); err == nil {
		t.Error("missing sensors must fail")
	}
}

func TestDeployRejectsInvalidSpec(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	bad := simpleFlow()
	bad.Nodes[1].Cond = "ghost > 1"
	if _, err := r.exec.Deploy(bad); err == nil {
		t.Error("invalid dataflow must not deploy")
	}
}

func TestRunSimpleFlow(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	// 60 seconds at 1 Hz -> 60 tuples.
	if err := d.Run(t0, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	got := d.Collected("out")
	if len(got) != 60 {
		t.Fatalf("collected %d tuples, want 60", len(got))
	}
	// Tuples arrive in order and are sourced correctly.
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("out-of-order delivery")
		}
	}
	if got[0].Source != "temp-1" {
		t.Error("source tag missing")
	}
}

func TestDSNAndSCNExposed(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if !strings.Contains(d.DSNText(), `service "src"`) {
		t.Errorf("DSN text:\n%s", d.DSNText())
	}
	script := d.SCNScript()
	if !strings.Contains(script, "create_process service=src") ||
		!strings.Contains(script, "set_qos") {
		t.Errorf("SCN script:\n%s", script)
	}
	if len(d.Placement()) != 3 {
		t.Errorf("placement: %v", d.Placement())
	}
}

func TestSourceLocalityPlacement(t *testing.T) {
	// With the locality strategy the source lands on its sensor's node.
	r := newRig(t, 4, []sensor.Spec{tempSpec("temp-1")})
	r.exec.cfg.Strategy = network.Locality{}
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	meta, _ := r.broker.Get("temp-1")
	if d.Placement()["src"] != meta.NodeID {
		t.Errorf("source placed on %s, sensor lives on %s", d.Placement()["src"], meta.NodeID)
	}
}

func TestStopAndResumeNoLoss(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	// Run the first half, then the second half: resume must not lose or
	// duplicate tuples.
	if err := d.Run(t0, t0.Add(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	firstHalf := len(d.Collected("out"))
	if err := d.Run(t0, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	total := len(d.Collected("out"))
	if firstHalf != 30 || total != 60 {
		t.Errorf("halves: %d then %d, want 30 then 60", firstHalf, total)
	}
	// Dedupe by per-source sequence number (event times are truncated to
	// the schema granularity, so they legitimately repeat).
	seqs := map[uint64]bool{}
	for _, tup := range d.Collected("out") {
		if seqs[tup.Seq] {
			t.Fatalf("duplicate tuple seq %d", tup.Seq)
		}
		seqs[tup.Seq] = true
	}
}

func TestGracefulStopDrains(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	spec := simpleFlow()
	// Add an aggregation so blocking state must flush on stop.
	spec.Nodes[1] = dataflow.NodeSpec{
		ID: "all", Kind: "aggregate", IntervalMS: 10000, Func: "COUNT",
	}
	d, err := r.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	done := make(chan error, 1)
	go func() { done <- d.Run(t0, t0.Add(time.Hour)) }()
	// Let some virtual time elapse, then stop.
	for len(d.Collected("out")) == 0 {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The aggregate flushed its partial window on EOS.
	got := d.Collected("out")
	if len(got) == 0 {
		t.Fatal("nothing drained")
	}
	var sum int64
	for _, tup := range got {
		sum += tup.MustGet("count").AsInt()
	}
	// Counted tuples must equal tuples the source emitted.
	in, _, _ := d.srcCtrs["src"].Snapshot()
	if sum != int64(in) {
		t.Errorf("counted %d, source emitted %d", sum, in)
	}
}

func TestTriggerActivatesSensorMidRun(t *testing.T) {
	// The Osaka pattern: rain-1 starts deactivated; the trigger activates it
	// when temperature > 25.
	specs := []sensor.Spec{
		tempSpec("temp-1"),
		{ID: "rain-1", Type: sensor.TypeRain, Location: geo.OsakaCenter, Seed: 7, FrequencyHz: 1},
	}
	r := newRig(t, 2, specs)
	spec := &dataflow.Spec{
		Name: "osaka-mini",
		Nodes: []dataflow.NodeSpec{
			{ID: "t", Kind: "source", Sensor: "temp-1"},
			{ID: "hot", Kind: "trigger_on", IntervalMS: 10000,
				Cond: "temperature > 25", Targets: []string{"rain-1"}},
			{ID: "tsink", Kind: "sink", Sink: "discard"},
			{ID: "r", Kind: "source", Sensor: "rain-1"},
			{ID: "rsink", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "t", To: "hot"},
			{From: "hot", To: "tsink"},
			{From: "r", To: "rsink"},
		},
	}
	d, err := r.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if r.broker.IsActive("rain-1") {
		t.Fatal("trigger target must start deactivated")
	}
	if !r.broker.IsActive("temp-1") {
		t.Fatal("plain source must start activated")
	}
	// At 14:00 Osaka temperature exceeds 25C (diurnal model); run noon to 15:00.
	noon := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	if err := d.Run(noon, noon.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !r.broker.IsActive("rain-1") {
		t.Fatal("trigger never activated the rain sensor")
	}
	rain := d.Collected("rsink")
	if len(rain) == 0 {
		t.Fatal("no rain tuples after activation")
	}
	// Rain tuples must only exist after the first fire.
	fires := d.Fires()
	var firstFire time.Time
	for _, f := range fires {
		if f.Fired {
			firstFire = f.WindowStart
			break
		}
	}
	if firstFire.IsZero() {
		t.Fatal("no fire event recorded")
	}
	for _, tup := range rain {
		if tup.Time.Before(firstFire) {
			t.Fatalf("rain tuple at %v precedes first fire %v", tup.Time, firstFire)
		}
	}
}

func TestReconfigureSwapsOperator(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(t0, t0.Add(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	before := len(d.Collected("out"))
	// Swap the filter to pass nothing.
	if err := d.SwapOperator(dataflow.NodeSpec{
		ID: "all", Kind: "filter", Cond: "temperature > 1000",
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(t0, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	after := len(d.Collected("out"))
	if after != before {
		t.Errorf("swapped filter leaked tuples: %d -> %d", before, after)
	}
	// Swap events logged.
	if len(r.mon.EventsOfKind(monitor.EventSwapped)) != 1 {
		t.Error("swap not logged")
	}
	// Swapping an unknown node fails.
	if err := d.SwapOperator(dataflow.NodeSpec{ID: "ghost", Kind: "filter", Cond: "true"}); err == nil {
		t.Error("unknown node swap must fail")
	}
	// Swapping in an invalid config fails and keeps the old dataflow.
	if err := d.SwapOperator(dataflow.NodeSpec{ID: "all", Kind: "filter", Cond: "ghost > 1"}); err == nil {
		t.Error("invalid swap must fail")
	}
	if err := d.Run(t0, t0.Add(90*time.Second)); err != nil {
		t.Fatalf("deployment broken after failed swap: %v", err)
	}
}

func TestReconfigureWhileRunningFails(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	done := make(chan error, 1)
	go func() { done <- d.Run(t0, t0.Add(time.Hour)) }()
	for len(d.Collected("out")) == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := d.Reconfigure(simpleFlow()); err == nil {
		t.Error("reconfigure while running must fail")
	}
	d.Stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPlugAndPlaySensor(t *testing.T) {
	// P3: publish a new sensor mid-deployment and extend the dataflow to it.
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(t0, t0.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}

	// New sensor joins the network.
	s2, err := sensor.New(sensor.Spec{
		ID: "temp-2", Type: sensor.TypeTemperature,
		Location: geo.OsakaCenter, NodeID: "node-01", Seed: 9, FrequencyHz: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.sensors["temp-2"] = s2
	if err := r.broker.Publish(s2.Meta()); err != nil {
		t.Fatal(err)
	}

	// Extend the dataflow with the new source.
	spec := simpleFlow()
	spec.Nodes = append(spec.Nodes,
		dataflow.NodeSpec{ID: "src2", Kind: "source", Sensor: "temp-2"},
		dataflow.NodeSpec{ID: "out2", Kind: "sink", Sink: "collect"},
	)
	spec.Edges = append(spec.Edges, dataflow.EdgeSpec{From: "src2", To: "out2"})
	if err := d.Reconfigure(spec); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(t0, t0.Add(20*time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(d.Collected("out2")) != 20 {
		t.Errorf("new source produced %d tuples, want 20 (its own full range)", len(d.Collected("out2")))
	}
	// Old sink kept its history and continued.
	if len(d.Collected("out")) != 20 {
		t.Errorf("old sink: %d, want 20", len(d.Collected("out")))
	}
}

func TestRebalanceMovesHotOperator(t *testing.T) {
	// Small node capacity so the pinned dataflow visibly overloads node-00.
	r := newRigCapacity(t, 3, 6, []sensor.Spec{tempSpec("temp-1")})
	// Force everything onto node-00 to create imbalance.
	r.exec.cfg.Strategy = &pinned{node: "node-00"}
	spec := simpleFlow()
	spec.Nodes[1] = dataflow.NodeSpec{ // blocking op: weight 3
		ID: "all", Kind: "aggregate", IntervalMS: 1000, Func: "COUNT",
	}
	d, err := r.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if d.Placement()["all"] != "node-00" {
		t.Fatal("setup: op not pinned")
	}
	migs, err := d.Rebalance(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(migs) != 1 || migs[0].Op != "all" || migs[0].To == "node-00" {
		t.Fatalf("migrations: %+v", migs)
	}
	if d.Placement()["all"] == "node-00" {
		t.Error("placement not updated")
	}
	// Assignment change logged (Figure 3).
	evs := r.mon.EventsOfKind(monitor.EventReassigned)
	if len(evs) != 1 || evs[0].Op != "all" {
		t.Errorf("reassignment events: %v", evs)
	}
	// The dataflow still runs after migration.
	if err := d.Run(t0, t0.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(d.Collected("out")) == 0 {
		t.Error("no output after migration")
	}
	// Balanced network: no further migration.
	migs, err = d.Rebalance(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(migs) != 0 {
		t.Errorf("unexpected migration: %+v", migs)
	}
}

// pinned places everything on one node.
type pinned struct{ node string }

func (p *pinned) Name() string { return "pinned" }
func (p *pinned) Place(svc network.ServiceInfo, net *network.Network) (string, error) {
	if err := net.AddLoad(p.node, svc.Weight); err != nil {
		return "", err
	}
	return p.node, nil
}

func TestMonitorStatistics(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(t0, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	rep := r.mon.Snapshot(r.clock.Now(), true)
	if len(rep.Ops) != 3 {
		t.Fatalf("monitored ops = %d, want 3", len(rep.Ops))
	}
	for _, op := range rep.Ops {
		if op.Node == "" {
			t.Errorf("op %s has no node", op.Name)
		}
		if op.Name == "all" && op.In != 60 {
			t.Errorf("filter in = %d, want 60", op.In)
		}
		if len(op.Series) == 0 {
			t.Errorf("op %s has no rate series", op.Name)
		}
	}
	if rep.HotNode == "" {
		t.Error("no hot node reported")
	}
}

func TestTransferAccountingAcrossNodes(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	// Round-robin guarantees the three services spread over both nodes.
	r.exec.cfg.Strategy = &network.RoundRobin{}
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(t0, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	var transferred uint64
	for _, id := range r.net.Flows() {
		tuples, bytes := r.net.TransferStats(id)
		transferred += tuples
		if tuples > 0 && bytes == 0 {
			t.Error("bytes not accounted")
		}
	}
	if transferred == 0 {
		t.Error("no cross-node transfers recorded despite round-robin placement")
	}
}

func TestUndeployReleasesResources(t *testing.T) {
	r := newRig(t, 2, []sensor.Spec{tempSpec("temp-1")})
	d, err := r.exec.Deploy(simpleFlow())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.net.Flows()) == 0 {
		t.Fatal("no flows allocated")
	}
	d.Undeploy()
	if len(r.net.Flows()) != 0 {
		t.Errorf("flows leaked: %v", r.net.Flows())
	}
	for _, id := range r.net.Nodes() {
		if r.net.Load(id) != 0 {
			t.Errorf("load leaked on %s: %v", id, r.net.Load(id))
		}
	}
}
