package executor

import (
	"sync"
	"time"
)

// timeCoordinator keeps replayed sources aligned in event time: a source may
// only emit the reading at time ts once ts is the minimum next-emission time
// across all live sources. This reproduces what the wall clock provides for
// free in live mode — cross-stream control actions (Trigger On/Off) take
// effect at a consistent event time on every stream — and makes replays
// deterministic up to the (measured) activation latency of the control path.
type timeCoordinator struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pos     map[string]time.Time
	stopped bool
}

func newTimeCoordinator() *timeCoordinator {
	c := &timeCoordinator{pos: map[string]time.Time{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// register announces a source and its first emission time. All sources must
// register before any of them calls wait, or the early ones would race past
// the unregistered rest; the executor registers during generation setup.
func (c *timeCoordinator) register(id string, ts time.Time) {
	c.mu.Lock()
	c.pos[id] = ts
	c.cond.Broadcast()
	c.mu.Unlock()
}

// wait blocks until ts is not ahead of any live source's position (or the
// coordinator is stopped). It also publishes ts as the source's position.
func (c *timeCoordinator) wait(id string, ts time.Time) {
	c.mu.Lock()
	c.pos[id] = ts
	c.cond.Broadcast()
	for !c.stopped && c.minLocked().Before(ts) {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// done removes a finished source so it no longer constrains the minimum.
func (c *timeCoordinator) done(id string) {
	c.mu.Lock()
	delete(c.pos, id)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// stop releases every waiter; sources then observe the stop channel and
// drain out.
func (c *timeCoordinator) stop() {
	c.mu.Lock()
	c.stopped = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// minLocked returns the earliest live position; the zero time means "no
// constraint" and is treated as +infinity by returning ts-independent max.
func (c *timeCoordinator) minLocked() time.Time {
	var min time.Time
	first := true
	for _, ts := range c.pos {
		if first || ts.Before(min) {
			min = ts
			first = false
		}
	}
	if first {
		return time.Unix(0, 1<<62)
	}
	return min
}
