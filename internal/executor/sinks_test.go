package executor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamloader/internal/stt"
)

var sinkSchema = stt.MustSchema([]stt.Field{
	stt.NewField("v", stt.KindFloat, ""),
}, stt.GranSecond, stt.SpatPoint, "test")

func sinkTuple(i int) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: sinkSchema,
		Values: []stt.Value{stt.Float(float64(i))},
		Time:   time.Date(2016, 3, 15, 0, 0, i, 0, time.UTC),
		Lat:    34.7, Lon: 135.5,
		Theme:  "test",
		Source: "s-1",
	}
	return tup.AlignSTT()
}

// recordingBatchSink records the batch sizes it receives.
type recordingBatchSink struct {
	mu      sync.Mutex
	batches [][]*stt.Tuple
	closed  bool
}

func (r *recordingBatchSink) Accept(t *stt.Tuple) error { return r.AcceptBatch([]*stt.Tuple{t}) }

func (r *recordingBatchSink) AcceptBatch(ts []*stt.Tuple) error {
	r.mu.Lock()
	cp := make([]*stt.Tuple, len(ts))
	copy(cp, ts)
	r.batches = append(r.batches, cp)
	r.mu.Unlock()
	return nil
}

func (r *recordingBatchSink) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return nil
}

func (r *recordingBatchSink) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.batches {
		n += len(b)
	}
	return n
}

func TestBufferedSinkSizeFlush(t *testing.T) {
	rec := &recordingBatchSink{}
	b := newBufferedSink(rec, 4, time.Hour)
	for i := 0; i < 10; i++ {
		if err := b.Accept(sinkTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	rec.mu.Lock()
	flushed := len(rec.batches)
	rec.mu.Unlock()
	if flushed != 2 { // two full batches of 4; 2 tuples still buffered
		t.Fatalf("flushed %d batches, want 2", flushed)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.total(); got != 10 {
		t.Fatalf("after close %d tuples delivered, want 10", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.closed {
		t.Error("Close must close the destination")
	}
	// Batch order must preserve accept order.
	i := 0
	for _, batch := range rec.batches {
		for _, tup := range batch {
			if tup.MustGet("v").AsFloat() != float64(i) {
				t.Fatalf("tuple %d out of order", i)
			}
			i++
		}
	}
}

func TestBufferedSinkAgeFlush(t *testing.T) {
	rec := &recordingBatchSink{}
	b := newBufferedSink(rec, 1000, 5*time.Millisecond)
	if err := b.Accept(sinkTuple(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rec.total() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedSinkFlushError(t *testing.T) {
	fail := &failingBatchSink{}
	b := newBufferedSink(fail, 1000, time.Hour)
	if err := b.Accept(sinkTuple(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err == nil {
		t.Fatal("Close must surface the drain failure")
	}
}

type failingBatchSink struct{}

func (failingBatchSink) Accept(*stt.Tuple) error        { return fmt.Errorf("boom") }
func (failingBatchSink) AcceptBatch([]*stt.Tuple) error { return fmt.Errorf("boom") }
func (failingBatchSink) Close() error                   { return nil }

// flakyBatchSink fails its first failN AcceptBatch calls, then delegates to
// the embedded recorder.
type flakyBatchSink struct {
	recordingBatchSink
	mu2   sync.Mutex
	calls int
	failN int
}

func (f *flakyBatchSink) AcceptBatch(ts []*stt.Tuple) error {
	f.mu2.Lock()
	f.calls++
	fail := f.calls <= f.failN
	f.mu2.Unlock()
	if fail {
		return fmt.Errorf("transient boom %d", f.calls)
	}
	return f.recordingBatchSink.AcceptBatch(ts)
}

// TestBufferedSinkFlushRetry is the regression test for the mid-run flush
// bug: a failed size-triggered flush used to drop the whole batch on the
// floor while Close still reported success. The batch must instead be
// retried until it lands, with nothing lost, duplicated or reordered.
func TestBufferedSinkFlushRetry(t *testing.T) {
	flaky := &flakyBatchSink{failN: 2}
	b := newBufferedSink(flaky, 4, time.Hour)
	for i := 0; i < 10; i++ {
		if err := b.Accept(sinkTuple(i)); err != nil {
			t.Fatalf("accept %d: %v (mid-run flush failures must not surface per tuple)", i, err)
		}
	}
	flaky.mu2.Lock()
	attempts := flaky.calls
	flaky.mu2.Unlock()
	if attempts < 2 {
		t.Fatalf("only %d flush attempts; the failed batch was never retried mid-run", attempts)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close = %v, want success after the drain retry lands", err)
	}
	if got := flaky.total(); got != 10 {
		t.Fatalf("delivered %d tuples, want all 10 despite two failed flushes", got)
	}
	i := 0
	for _, batch := range flaky.batches {
		for _, tup := range batch {
			if tup.MustGet("v").AsFloat() != float64(i) {
				t.Fatalf("tuple %d out of order after retry", i)
			}
			i++
		}
	}
}

// TestBufferedSinkAgeFlushRetries: a backlog from a failed flush must be
// retried by the age ticker, not parked until Close.
func TestBufferedSinkAgeFlushRetries(t *testing.T) {
	flaky := &flakyBatchSink{failN: 1}
	b := newBufferedSink(flaky, 2, 5*time.Millisecond)
	for i := 0; i < 2; i++ {
		if err := b.Accept(sinkTuple(i)); err != nil { // first flush fails
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for flaky.total() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("age ticker never retried the failed batch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferedSinkRecoveryAfterBacklogFull: even once the backlog is full
// and Accept is shedding, the destination must still be retried on the
// accept path (not just age ticks), so a recovery drains the backlog and
// later tuples flow again; every accept is either delivered or was shed
// with an error — never silently lost.
func TestBufferedSinkRecoveryAfterBacklogFull(t *testing.T) {
	flaky := &flakyBatchSink{failN: 6}
	b := newBufferedSink(flaky, 2, time.Hour) // age ticks never fire in-test
	shed := 0
	for i := 0; i < 14; i++ {
		if err := b.Accept(sinkTuple(i)); err != nil {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("full backlog never shed")
	}
	if flaky.total() == 0 {
		t.Fatal("destination recovered but the backlog was never retried from Accept")
	}
	if err := b.Accept(sinkTuple(14)); err != nil {
		t.Fatalf("post-recovery accept: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close after recovery = %v, want success", err)
	}
	if got := flaky.total() + shed; got != 15 {
		t.Errorf("delivered %d + shed %d = %d, want 15 accounted", flaky.total(), shed, got)
	}
}

// TestBufferedSinkPersistentFailure: when the destination never recovers,
// the sink must shed (surfacing the error per Accept once the backlog is
// full) and Close must report the failure, never success.
func TestBufferedSinkPersistentFailure(t *testing.T) {
	b := newBufferedSink(failingBatchSink{}, 2, time.Hour)
	var shed int
	for i := 0; i < 20; i++ {
		if err := b.Accept(sinkTuple(i)); err != nil {
			shed++
		}
	}
	if shed == 0 {
		t.Error("a persistently failing destination must surface shed tuples via Accept")
	}
	if shed >= 20 {
		t.Error("the backlog must hold some tuples for retry, not shed everything")
	}
	if err := b.Close(); err == nil {
		t.Fatal("Close must report the unflushed backlog, not success")
	}
}

// TestBufferedSinkAdaptiveSizing drives an adaptive sink (size 0) at a
// known rate and checks the batch size tracks it: heavy traffic grows the
// threshold toward the arrivals-per-interval rate, silence shrinks it back
// down, and the clamp bounds always hold.
func TestBufferedSinkAdaptiveSizing(t *testing.T) {
	rec := &recordingBatchSink{}
	b := newBufferedSink(rec, 0, time.Hour) // ticks driven manually via adapt()
	if !b.adaptive || b.size != adaptiveStart {
		t.Fatalf("adaptive sink starts size=%d adaptive=%v, want %d/true", b.size, b.adaptive, adaptiveStart)
	}

	// Sustained heavy intervals: ~10000 arrivals per tick must saturate at
	// the clamp ceiling, not track the raw rate.
	for tick := 0; tick < 12; tick++ {
		for i := 0; i < 10000; i++ {
			if err := b.Accept(sinkTuple(i)); err != nil {
				t.Fatal(err)
			}
		}
		b.adapt()
	}
	b.mu.Lock()
	heavy := b.size
	b.mu.Unlock()
	if heavy != maxAdaptiveBatch {
		t.Fatalf("after heavy intervals size = %d, want clamp %d", heavy, maxAdaptiveBatch)
	}

	// Silence: the EWMA decays and the size floors at the clamp minimum.
	for tick := 0; tick < 40; tick++ {
		b.adapt()
	}
	b.mu.Lock()
	quiet := b.size
	b.mu.Unlock()
	if quiet != minAdaptiveBatch {
		t.Fatalf("after quiet intervals size = %d, want clamp %d", quiet, minAdaptiveBatch)
	}

	// A moderate steady rate settles near the rate itself.
	for tick := 0; tick < 20; tick++ {
		for i := 0; i < 500; i++ {
			if err := b.Accept(sinkTuple(i)); err != nil {
				t.Fatal(err)
			}
		}
		b.adapt()
	}
	b.mu.Lock()
	steady := b.size
	b.mu.Unlock()
	if steady < 400 || steady > 600 {
		t.Fatalf("steady 500/interval settled at size %d, want ~500", steady)
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Conservation across all the resizing: every accepted tuple landed.
	if got := rec.total(); got != 12*10000+20*500 {
		t.Fatalf("delivered %d tuples, want %d", got, 12*10000+20*500)
	}
}

// TestBufferedSinkFixedSizeStaysFixed: an explicit size must never be
// retuned by the age loop.
func TestBufferedSinkFixedSizeStaysFixed(t *testing.T) {
	rec := &recordingBatchSink{}
	b := newBufferedSink(rec, 7, time.Hour)
	for i := 0; i < 100; i++ {
		if err := b.Accept(sinkTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	b.adapt() // a tick on a fixed-size sink is a no-op
	b.mu.Lock()
	size := b.size
	b.mu.Unlock()
	if size != 7 {
		t.Fatalf("fixed sink resized to %d", size)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectSinksDoNotShareLocks(t *testing.T) {
	// Two collect sinks of one deployment accept concurrently; each buffers
	// under its own lock and Collected merges on read.
	d := &Deployment{collectors: map[string]*collectSink{}}
	a, b := d.collector("a"), d.collector("b")
	if d.collector("a") != a {
		t.Fatal("collector must be reused across calls")
	}
	var wg sync.WaitGroup
	for _, s := range []*collectSink{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := s.Accept(sinkTuple(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(d.Collected("a")); got != 500 {
		t.Errorf("collected a = %d", got)
	}
	if got := len(d.Collected("b")); got != 500 {
		t.Errorf("collected b = %d", got)
	}
	if got := d.Collected("missing"); len(got) != 0 {
		t.Errorf("unknown sink = %v", got)
	}
}
