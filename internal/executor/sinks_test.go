package executor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamloader/internal/stt"
)

var sinkSchema = stt.MustSchema([]stt.Field{
	stt.NewField("v", stt.KindFloat, ""),
}, stt.GranSecond, stt.SpatPoint, "test")

func sinkTuple(i int) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: sinkSchema,
		Values: []stt.Value{stt.Float(float64(i))},
		Time:   time.Date(2016, 3, 15, 0, 0, i, 0, time.UTC),
		Lat:    34.7, Lon: 135.5,
		Theme:  "test",
		Source: "s-1",
	}
	return tup.AlignSTT()
}

// recordingBatchSink records the batch sizes it receives.
type recordingBatchSink struct {
	mu      sync.Mutex
	batches [][]*stt.Tuple
	closed  bool
}

func (r *recordingBatchSink) Accept(t *stt.Tuple) error { return r.AcceptBatch([]*stt.Tuple{t}) }

func (r *recordingBatchSink) AcceptBatch(ts []*stt.Tuple) error {
	r.mu.Lock()
	cp := make([]*stt.Tuple, len(ts))
	copy(cp, ts)
	r.batches = append(r.batches, cp)
	r.mu.Unlock()
	return nil
}

func (r *recordingBatchSink) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return nil
}

func (r *recordingBatchSink) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.batches {
		n += len(b)
	}
	return n
}

func TestBufferedSinkSizeFlush(t *testing.T) {
	rec := &recordingBatchSink{}
	b := newBufferedSink(rec, 4, time.Hour)
	for i := 0; i < 10; i++ {
		if err := b.Accept(sinkTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	rec.mu.Lock()
	flushed := len(rec.batches)
	rec.mu.Unlock()
	if flushed != 2 { // two full batches of 4; 2 tuples still buffered
		t.Fatalf("flushed %d batches, want 2", flushed)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.total(); got != 10 {
		t.Fatalf("after close %d tuples delivered, want 10", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.closed {
		t.Error("Close must close the destination")
	}
	// Batch order must preserve accept order.
	i := 0
	for _, batch := range rec.batches {
		for _, tup := range batch {
			if tup.MustGet("v").AsFloat() != float64(i) {
				t.Fatalf("tuple %d out of order", i)
			}
			i++
		}
	}
}

func TestBufferedSinkAgeFlush(t *testing.T) {
	rec := &recordingBatchSink{}
	b := newBufferedSink(rec, 1000, 5*time.Millisecond)
	if err := b.Accept(sinkTuple(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rec.total() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedSinkFlushError(t *testing.T) {
	fail := &failingBatchSink{}
	b := newBufferedSink(fail, 1000, time.Hour)
	if err := b.Accept(sinkTuple(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err == nil {
		t.Fatal("Close must surface the drain failure")
	}
}

type failingBatchSink struct{}

func (failingBatchSink) Accept(*stt.Tuple) error        { return fmt.Errorf("boom") }
func (failingBatchSink) AcceptBatch([]*stt.Tuple) error { return fmt.Errorf("boom") }
func (failingBatchSink) Close() error                   { return nil }

func TestCollectSinksDoNotShareLocks(t *testing.T) {
	// Two collect sinks of one deployment accept concurrently; each buffers
	// under its own lock and Collected merges on read.
	d := &Deployment{collectors: map[string]*collectSink{}}
	a, b := d.collector("a"), d.collector("b")
	if d.collector("a") != a {
		t.Fatal("collector must be reused across calls")
	}
	var wg sync.WaitGroup
	for _, s := range []*collectSink{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := s.Accept(sinkTuple(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(d.Collected("a")); got != 500 {
		t.Errorf("collected a = %d", got)
	}
	if got := len(d.Collected("b")); got != 500 {
		t.Errorf("collected b = %d", got)
	}
	if got := d.Collected("missing"); len(got) != 0 {
		t.Errorf("unknown sink = %v", got)
	}
}
