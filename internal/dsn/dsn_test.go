package dsn

import (
	"strings"
	"testing"

	"streamloader/internal/dataflow"
	"streamloader/internal/geo"
	"streamloader/internal/ops"
	"streamloader/internal/stt"
)

func testResolver() dataflow.SensorResolver {
	schemas := map[string]*stt.Schema{
		"temp-1": stt.MustSchema([]stt.Field{
			stt.NewField("temperature", stt.KindFloat, "celsius"),
			stt.NewField("station", stt.KindString, ""),
		}, stt.GranMinute, stt.SpatCellDistrict, "weather"),
		"rain-1": stt.MustSchema([]stt.Field{
			stt.NewField("rain_rate", stt.KindFloat, "mm/h"),
		}, stt.GranMinute, stt.SpatCellDistrict, "weather", "rain"),
	}
	return dataflow.ResolverFunc(func(id string) (*stt.Schema, bool) {
		s, ok := schemas[id]
		return s, ok
	})
}

// fullSpec exercises every operation kind for translation round-trips.
func fullSpec() *dataflow.Spec {
	area := geo.NewRect(geo.Point{Lat: 34.4, Lon: 135.2}, geo.Point{Lat: 34.9, Lon: 135.7})
	return &dataflow.Spec{
		Name: "everything",
		Nodes: []dataflow.NodeSpec{
			{ID: "t", Kind: "source", Sensor: "temp-1"},
			{ID: "r", Kind: "source", Sensor: "rain-1"},
			{ID: "f", Kind: "filter", Cond: "temperature > 25"},
			{ID: "v", Kind: "virtual_property", Property: "t2", Spec: "temperature * 2", Unit: "celsius"},
			{ID: "ct", Kind: "cull_time", Rate: 0.5,
				From: "2016-03-15T00:00:00Z", To: "2016-03-16T00:00:00Z"},
			{ID: "cs", Kind: "cull_space", Rate: 0.9, Area: &area},
			{ID: "tr", Kind: "transform", Steps: []ops.TransformStep{
				{Op: "rename", Field: "rain_rate", NewName: "rate"},
			}},
			{ID: "ag", Kind: "aggregate", IntervalMS: 60000,
				GroupBy: []string{"station"}, Func: "AVG", Attr: "temperature"},
			{ID: "on", Kind: "trigger_on", IntervalMS: 3600000,
				Cond: "temperature > 25", Targets: []string{"rain-1"}, Mode: "any"},
			{ID: "j", Kind: "join", IntervalMS: 60000,
				Predicate: "left.avg_temperature > right.rate"},
			{ID: "out", Kind: "sink", Sink: "warehouse"},
			{ID: "out2", Kind: "sink", Sink: "viz"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "t", To: "f"},
			{From: "f", To: "v"},
			{From: "v", To: "ct"},
			{From: "ct", To: "cs"},
			{From: "cs", To: "on"},
			{From: "on", To: "ag"},
			{From: "r", To: "tr"},
			{From: "ag", To: "j", Port: 0},
			{From: "tr", To: "j", Port: 1},
			{From: "j", To: "out"},
			{From: "ag", To: "out2"},
		},
	}
}

func compileFull(t *testing.T) (*dataflow.Spec, *dataflow.Plan) {
	t.Helper()
	spec := fullSpec()
	plan, diags := dataflow.Compile(spec, testResolver(), nopAct{}, nil)
	if diags.HasErrors() {
		t.Fatalf("fixture does not compile: %v", diags)
	}
	return spec, plan
}

type nopAct struct{}

func (nopAct) Activate(string) error   { return nil }
func (nopAct) Deactivate(string) error { return nil }

func TestTranslateProducesValidDocument(t *testing.T) {
	spec, plan := compileFull(t)
	doc, err := Translate(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != len(spec.Nodes) || len(doc.Links) != len(spec.Edges) {
		t.Errorf("services=%d links=%d", len(doc.Services), len(doc.Links))
	}
	src := doc.Service("t")
	if src == nil || src.Kind != "source" || src.Param("sensor") != "temp-1" {
		t.Errorf("source service: %+v", src)
	}
	if src.Schema == "" || !strings.Contains(src.Schema, "temperature") {
		t.Errorf("schema annotation: %q", src.Schema)
	}
	if doc.Service("ghost") != nil {
		t.Error("Service(ghost)")
	}
}

func TestTranslateWithoutPlan(t *testing.T) {
	if _, err := Translate(fullSpec(), nil); err == nil {
		t.Error("nil plan must fail")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	spec, plan := compileFull(t)
	doc, err := Translate(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	text := doc.String()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("parse of printed document failed: %v\n%s", err, text)
	}
	// Print again: must be byte-identical (stable fixpoint).
	if parsed.String() != text {
		t.Error("print/parse/print not a fixpoint")
	}
	if len(parsed.Services) != len(doc.Services) || len(parsed.Links) != len(doc.Links) {
		t.Error("structure lost in round trip")
	}
}

func TestSpecRoundTripThroughDSN(t *testing.T) {
	spec, plan := compileFull(t)
	doc, err := Translate(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered spec must compile identically.
	plan2, diags := dataflow.Compile(back, testResolver(), nopAct{}, nil)
	if diags.HasErrors() {
		t.Fatalf("recovered spec does not compile: %v", diags)
	}
	if len(plan2.Nodes) != len(plan.Nodes) {
		t.Errorf("plans differ: %d vs %d nodes", len(plan2.Nodes), len(plan.Nodes))
	}
	// Spot-check a parameter-heavy node.
	ag := back.Node("ag")
	if ag.IntervalMS != 60000 || ag.Func != "AVG" || ag.Attr != "temperature" ||
		len(ag.GroupBy) != 1 || ag.GroupBy[0] != "station" {
		t.Errorf("aggregate params lost: %+v", ag)
	}
	cs := back.Node("cs")
	if cs.Rate != 0.9 || cs.Area == nil || cs.Area.Min.Lat != 34.4 {
		t.Errorf("cull_space params lost: %+v", cs)
	}
	tr := back.Node("tr")
	if len(tr.Steps) != 1 || tr.Steps[0].NewName != "rate" {
		t.Errorf("transform steps lost: %+v", tr)
	}
	on := back.Node("on")
	if len(on.Targets) != 1 || on.Targets[0] != "rain-1" || on.Mode != "any" {
		t.Errorf("trigger params lost: %+v", on)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"dsn {",
		`dsn "x" {`,
		`dsn "x" { service }`,
		`dsn "x" { service "s" { } }`, // no kind
		`dsn "x" { service "s" { kind: filter param } }`,                        // bad param
		`dsn "x" { frobnicate }`,                                                // unknown section
		`dsn "x" { link "a" -> "b" { port: 0 } }`,                               // undeclared services
		`dsn "x" { service "s" { kind: filter } service "s" { kind: filter } }`, // dup
		`dsn "x" { service "s" { kind: filter param a: "1" param a: "2" } }`,    // dup param
		`dsn "x" { service "s" { kind: filter } link "s" -> "s" { qos { bogus: 1 } } }`,
		`dsn "x" { service "s" { kind: filter schema: unquoted } }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse succeeded on %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `# a dataflow
dsn "c" {
  # the source
  service "s" { kind: source param sensor: "temp-1" }
}
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "c" || len(doc.Services) != 1 {
		t.Errorf("parsed: %+v", doc)
	}
}

func TestQoSDerivation(t *testing.T) {
	spec, plan := compileFull(t)
	doc, err := Translate(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Link into the join (blocking, 60s window) must allow 60000 ms latency.
	for _, l := range doc.Links {
		if l.To == "j" {
			if l.QoS.MaxLatencyMS != 60000 {
				t.Errorf("link %s->j latency = %d, want 60000", l.From, l.QoS.MaxLatencyMS)
			}
		}
		if l.QoS.MinBandwidthKbps < 8 {
			t.Errorf("link %s->%s bandwidth = %d", l.From, l.To, l.QoS.MinBandwidthKbps)
		}
	}
}

func TestConfigRequests(t *testing.T) {
	spec, plan := compileFull(t)
	doc, err := Translate(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	placement := map[string]string{}
	for _, s := range doc.Services {
		placement[s.Name] = "node-1"
	}
	reqs, err := ConfigRequests(doc, placement)
	if err != nil {
		t.Fatal(err)
	}
	// One create_process per service, then create_flow+set_qos per link.
	wantLen := len(doc.Services) + 2*len(doc.Links)
	if len(reqs) != wantLen {
		t.Fatalf("requests = %d, want %d", len(reqs), wantLen)
	}
	var processes, flows, qos int
	for _, r := range reqs {
		switch r.Kind {
		case ReqCreateProcess:
			processes++
			if r.Node != "node-1" {
				t.Errorf("placement lost: %+v", r)
			}
		case ReqCreateFlow:
			flows++
		case ReqSetQoS:
			qos++
		}
	}
	if processes != len(doc.Services) || flows != len(doc.Links) || qos != len(doc.Links) {
		t.Errorf("counts: %d processes, %d flows, %d qos", processes, flows, qos)
	}
	script := Script(reqs)
	if !strings.Contains(script, "create_process service=t node=node-1") {
		t.Errorf("script:\n%s", script)
	}
	if strings.Count(script, "\n") != wantLen {
		t.Error("script line count")
	}
}

func TestConfigRequestsMissingPlacement(t *testing.T) {
	spec, plan := compileFull(t)
	doc, err := Translate(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigRequests(doc, map[string]string{}); err == nil {
		t.Error("missing placement must fail")
	}
}

func TestRequestString(t *testing.T) {
	r := Request{Kind: ReqSetQoS, FlowID: "f", QoS: QoS{MaxLatencyMS: 5, MinBandwidthKbps: 9}}
	if !strings.Contains(r.String(), "max_latency_ms=5") {
		t.Error(r.String())
	}
	r2 := Request{Kind: ReqCreateFlow, Service: "a", PeerService: "b", FlowID: "f"}
	if !strings.Contains(r2.String(), "from=a to=b") {
		t.Error(r2.String())
	}
	if (Request{Kind: "other"}).String() != "other" {
		t.Error("unknown kind string")
	}
}

func TestDocumentValidate(t *testing.T) {
	bad := []*Document{
		{},
		{Name: "x", Services: []Service{{Name: ""}}},
		{Name: "x", Services: []Service{{Name: "a"}, {Name: "a"}}},
		{Name: "x", Services: []Service{{Name: "a"}},
			Links: []Link{{From: "ghost", To: "a"}}},
		{Name: "x", Services: []Service{{Name: "a"}},
			Links: []Link{{From: "a", To: "ghost"}}},
		{Name: "x", Services: []Service{{Name: "a"}, {Name: "b"}},
			Links: []Link{{From: "a", To: "b", QoS: QoS{MaxLatencyMS: -1}}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("document %d validated, want error", i)
		}
	}
}
