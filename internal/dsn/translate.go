package dsn

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"streamloader/internal/dataflow"
	"streamloader/internal/geo"
	"streamloader/internal/ops"
)

// Translate converts a validated conceptual dataflow into its DSN document,
// the paper's "once the dataflow is consistent ... the translation is
// automatically invoked". The plan supplies topological order and the
// propagated schemas; the spec supplies the operation parameters.
func Translate(spec *dataflow.Spec, plan *dataflow.Plan) (*Document, error) {
	if plan == nil {
		return nil, fmt.Errorf("dsn: cannot translate without a compiled plan")
	}
	doc := &Document{Name: spec.Name}
	for _, pn := range plan.Nodes {
		ns := spec.Node(pn.ID)
		if ns == nil {
			return nil, fmt.Errorf("dsn: plan node %q missing from spec", pn.ID)
		}
		svc := Service{Name: pn.ID, Kind: string(pn.Kind), Params: map[string]string{}}
		if pn.OutSchema != nil {
			svc.Schema = pn.OutSchema.String()
		}
		if err := encodeParams(&svc, ns); err != nil {
			return nil, fmt.Errorf("dsn: service %q: %w", pn.ID, err)
		}
		doc.Services = append(doc.Services, svc)
	}
	for _, e := range spec.Edges {
		doc.Links = append(doc.Links, Link{
			From: e.From, To: e.To, Port: e.Port, QoS: qosFor(spec, plan, e),
		})
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return doc, nil
}

// qosFor derives a link's QoS requirements: blocking consumers tolerate one
// window of latency; the bandwidth reservation scales with the upstream
// schema width (a crude but monotone size estimate).
func qosFor(spec *dataflow.Spec, plan *dataflow.Plan, e dataflow.EdgeSpec) QoS {
	q := DefaultQoS
	if to := spec.Node(e.To); to != nil && ops.Kind(to.Kind).Blocking() && to.IntervalMS > 0 {
		q.MaxLatencyMS = int(to.IntervalMS)
	}
	if from := plan.Node(e.From); from != nil && from.OutSchema != nil {
		// ~64 bytes per field at the observed sensor rates.
		q.MinBandwidthKbps = 8 + 8*from.OutSchema.NumFields()
	}
	return q
}

func encodeParams(svc *Service, n *dataflow.NodeSpec) error {
	set := func(k, v string) {
		if v != "" {
			svc.Params[k] = v
		}
	}
	switch ops.Kind(n.Kind) {
	case ops.KindSource:
		set("sensor", n.Sensor)
	case ops.KindSink:
		sink := n.Sink
		if sink == "" {
			sink = "collect"
		}
		set("sink", sink)
	case ops.KindFilter:
		set("cond", n.Cond)
	case ops.KindVirtual:
		set("property", n.Property)
		set("spec", n.Spec)
		set("unit", n.Unit)
	case ops.KindCullTime:
		set("rate", formatFloat(n.Rate))
		set("from", n.From)
		set("to", n.To)
	case ops.KindCullSpace:
		set("rate", formatFloat(n.Rate))
		if n.Area != nil {
			set("area", formatArea(*n.Area))
		}
	case ops.KindTransform:
		steps, err := json.Marshal(n.Steps)
		if err != nil {
			return err
		}
		set("steps", string(steps))
	case ops.KindAggregate:
		set("interval_ms", strconv.FormatInt(n.IntervalMS, 10))
		set("func", n.Func)
		set("attr", n.Attr)
		set("group_by", strings.Join(n.GroupBy, ","))
	case ops.KindJoin:
		set("interval_ms", strconv.FormatInt(n.IntervalMS, 10))
		set("predicate", n.Predicate)
	case ops.KindTriggerOn, ops.KindTriggerOff:
		set("interval_ms", strconv.FormatInt(n.IntervalMS, 10))
		set("cond", n.Cond)
		set("targets", strings.Join(n.Targets, ","))
		set("mode", n.Mode)
	default:
		return fmt.Errorf("unknown kind %q", n.Kind)
	}
	return nil
}

// ToSpec interprets a DSN document back into a conceptual dataflow spec —
// the inverse of Translate, used by the network side to instantiate
// processes from the received description.
func ToSpec(doc *Document) (*dataflow.Spec, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	spec := &dataflow.Spec{Name: doc.Name}
	for _, svc := range doc.Services {
		n := dataflow.NodeSpec{ID: svc.Name, Kind: svc.Kind}
		if err := decodeParams(&n, &svc); err != nil {
			return nil, fmt.Errorf("dsn: service %q: %w", svc.Name, err)
		}
		spec.Nodes = append(spec.Nodes, n)
	}
	for _, l := range doc.Links {
		spec.Edges = append(spec.Edges, dataflow.EdgeSpec{From: l.From, To: l.To, Port: l.Port})
	}
	return spec, nil
}

func decodeParams(n *dataflow.NodeSpec, svc *Service) error {
	get := svc.Param
	switch ops.Kind(svc.Kind) {
	case ops.KindSource:
		n.Sensor = get("sensor")
	case ops.KindSink:
		n.Sink = get("sink")
	case ops.KindFilter:
		n.Cond = get("cond")
	case ops.KindVirtual:
		n.Property = get("property")
		n.Spec = get("spec")
		n.Unit = get("unit")
	case ops.KindCullTime:
		if err := parseFloatInto(&n.Rate, get("rate")); err != nil {
			return err
		}
		n.From = get("from")
		n.To = get("to")
	case ops.KindCullSpace:
		if err := parseFloatInto(&n.Rate, get("rate")); err != nil {
			return err
		}
		if a := get("area"); a != "" {
			area, err := parseArea(a)
			if err != nil {
				return err
			}
			n.Area = &area
		}
	case ops.KindTransform:
		if s := get("steps"); s != "" {
			if err := json.Unmarshal([]byte(s), &n.Steps); err != nil {
				return fmt.Errorf("bad steps: %v", err)
			}
		}
	case ops.KindAggregate:
		if err := parseIntInto(&n.IntervalMS, get("interval_ms")); err != nil {
			return err
		}
		n.Func = get("func")
		n.Attr = get("attr")
		if g := get("group_by"); g != "" {
			n.GroupBy = strings.Split(g, ",")
		}
	case ops.KindJoin:
		if err := parseIntInto(&n.IntervalMS, get("interval_ms")); err != nil {
			return err
		}
		n.Predicate = get("predicate")
	case ops.KindTriggerOn, ops.KindTriggerOff:
		if err := parseIntInto(&n.IntervalMS, get("interval_ms")); err != nil {
			return err
		}
		n.Cond = get("cond")
		if t := get("targets"); t != "" {
			n.Targets = strings.Split(t, ",")
		}
		n.Mode = get("mode")
	default:
		return fmt.Errorf("unknown kind %q", svc.Kind)
	}
	return nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func parseFloatInto(dst *float64, s string) error {
	if s == "" {
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad float %q: %v", s, err)
	}
	*dst = v
	return nil
}

func parseIntInto(dst *int64, s string) error {
	if s == "" {
		return nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("bad integer %q: %v", s, err)
	}
	*dst = v
	return nil
}

func formatArea(r geo.Rect) string {
	return fmt.Sprintf("%s;%s;%s;%s",
		formatFloat(r.Min.Lat), formatFloat(r.Min.Lon),
		formatFloat(r.Max.Lat), formatFloat(r.Max.Lon))
}

func parseArea(s string) (geo.Rect, error) {
	parts := strings.Split(s, ";")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("bad area %q: want 4 components", s)
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("bad area component %q: %v", p, err)
		}
		vals[i] = v
	}
	return geo.NewRect(
		geo.Point{Lat: vals[0], Lon: vals[1]},
		geo.Point{Lat: vals[2], Lon: vals[3]},
	), nil
}
