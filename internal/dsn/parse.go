package dsn

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a DSN document from its concrete syntax.
func Parse(src string) (*Document, error) {
	p := &dsnParser{src: src}
	doc, err := p.parseDocument()
	if err != nil {
		return nil, err
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return doc, nil
}

type dsnParser struct {
	src string
	pos int
}

func (p *dsnParser) errorf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("dsn: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *dsnParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '#' { // comments to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		p.pos++
	}
}

// accept consumes the literal token if present.
func (p *dsnParser) accept(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// expect consumes the literal token or fails.
func (p *dsnParser) expect(tok string) error {
	if !p.accept(tok) {
		rest := p.src[p.pos:]
		if len(rest) > 20 {
			rest = rest[:20] + "..."
		}
		return p.errorf("expected %q, found %q", tok, rest)
	}
	return nil
}

// word reads an identifier-like token (letters, digits, _, -).
func (p *dsnParser) word() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errorf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

// quoted reads a Go-quoted string.
func (p *dsnParser) quoted() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '"' {
		return "", p.errorf("expected quoted string")
	}
	// Find the end of the quoted literal respecting escapes.
	i := p.pos + 1
	for i < len(p.src) {
		switch p.src[i] {
		case '\\':
			i += 2
			continue
		case '"':
			lit := p.src[p.pos : i+1]
			s, err := strconv.Unquote(lit)
			if err != nil {
				return "", p.errorf("bad string literal %s: %v", lit, err)
			}
			p.pos = i + 1
			return s, nil
		}
		i++
	}
	return "", p.errorf("unterminated string")
}

// integer reads a (possibly negative) decimal integer.
func (p *dsnParser) integer() (int, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errorf("expected integer")
	}
	v, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errorf("bad integer: %v", err)
	}
	return v, nil
}

func (p *dsnParser) parseDocument() (*Document, error) {
	if err := p.expect("dsn"); err != nil {
		return nil, err
	}
	name, err := p.quoted()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	doc := &Document{Name: name}
	for {
		p.skipSpace()
		switch {
		case p.accept("}"):
			return doc, nil
		case p.accept("service"):
			s, err := p.parseService()
			if err != nil {
				return nil, err
			}
			doc.Services = append(doc.Services, *s)
		case p.accept("link"):
			l, err := p.parseLink()
			if err != nil {
				return nil, err
			}
			doc.Links = append(doc.Links, *l)
		default:
			return nil, p.errorf("expected 'service', 'link' or '}'")
		}
	}
}

func (p *dsnParser) parseService() (*Service, error) {
	name, err := p.quoted()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	s := &Service{Name: name, Params: map[string]string{}}
	for {
		p.skipSpace()
		switch {
		case p.accept("}"):
			if s.Kind == "" {
				return nil, p.errorf("service %q has no kind", name)
			}
			return s, nil
		case p.accept("kind:"):
			kind, err := p.word()
			if err != nil {
				return nil, err
			}
			s.Kind = kind
		case p.accept("schema:"):
			schema, err := p.quoted()
			if err != nil {
				return nil, err
			}
			s.Schema = schema
		case p.accept("param"):
			key, err := p.word()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			val, err := p.quoted()
			if err != nil {
				return nil, err
			}
			if _, dup := s.Params[key]; dup {
				return nil, p.errorf("duplicate param %q in service %q", key, name)
			}
			s.Params[key] = val
		default:
			return nil, p.errorf("expected 'kind:', 'schema:', 'param' or '}' in service %q", name)
		}
	}
}

func (p *dsnParser) parseLink() (*Link, error) {
	from, err := p.quoted()
	if err != nil {
		return nil, err
	}
	if err := p.expect("->"); err != nil {
		return nil, err
	}
	to, err := p.quoted()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	l := &Link{From: from, To: to, QoS: DefaultQoS}
	for {
		p.skipSpace()
		switch {
		case p.accept("}"):
			return l, nil
		case p.accept("port:"):
			port, err := p.integer()
			if err != nil {
				return nil, err
			}
			l.Port = port
		case p.accept("qos"):
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			for {
				p.skipSpace()
				if p.accept("}") {
					break
				}
				p.accept(",")
				switch {
				case p.accept("max_latency_ms:"):
					v, err := p.integer()
					if err != nil {
						return nil, err
					}
					l.QoS.MaxLatencyMS = v
				case p.accept("min_bandwidth_kbps:"):
					v, err := p.integer()
					if err != nil {
						return nil, err
					}
					l.QoS.MinBandwidthKbps = v
				default:
					return nil, p.errorf("expected QoS attribute")
				}
			}
		default:
			return nil, p.errorf("expected 'port:', 'qos' or '}' in link")
		}
	}
}
