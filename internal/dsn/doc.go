// Package dsn implements the DSN/SCN layer of StreamLoader: the declarative
// service networking language that conceptual dataflows are translated into
// (paper §2, [8]), plus the SCN configuration requests through which the
// network control protocol stack "interprets the DSN description and
// dynamically coordinates the network configurations, such as data flows,
// segmentations, and QoS parameters".
//
// Reference [8] describes DSN/SCN in prose without a public grammar; this
// package defines a concrete grammar for it:
//
//	dsn "osaka-hot" {
//	  service "src_temp" {
//	    kind: source
//	    param sensor: "temp-1"
//	    schema: "(temperature:float[celsius]) @minute/district {weather}"
//	  }
//	  service "hot" {
//	    kind: filter
//	    param cond: "temperature > 25"
//	  }
//	  link "src_temp" -> "hot" {
//	    port: 0
//	    qos { max_latency_ms: 500, min_bandwidth_kbps: 16 }
//	  }
//	}
//
// Documents print and parse losslessly (round-trip property tested).
package dsn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// QoS carries the per-link quality-of-service requirements SCN requests
// from the network platform.
type QoS struct {
	// MaxLatencyMS is the highest tolerable end-to-end latency of the link.
	MaxLatencyMS int `json:"max_latency_ms"`
	// MinBandwidthKbps is the bandwidth reservation for the flow.
	MinBandwidthKbps int `json:"min_bandwidth_kbps"`
}

// DefaultQoS is used when the translator has no better information.
var DefaultQoS = QoS{MaxLatencyMS: 1000, MinBandwidthKbps: 16}

// Service is one information service of the DSN description: a source, an
// ETL operation, or a sink, with its parameters.
type Service struct {
	// Name is the dataflow node ID.
	Name string
	// Kind is the operation kind ("source", "filter", ...).
	Kind string
	// Params carries the operation configuration as strings.
	Params map[string]string
	// Schema annotates the service's output schema (informational; shown
	// in the monitoring UI and used for debugging translations).
	Schema string
}

// Param returns a parameter value ("" when absent).
func (s *Service) Param(key string) string { return s.Params[key] }

// Link is one service-to-service flow with its QoS requirements.
type Link struct {
	From string
	To   string
	Port int
	QoS  QoS
}

// Document is a complete DSN description of one dataflow.
type Document struct {
	Name     string
	Services []Service
	Links    []Link
}

// Service returns the named service, or nil.
func (d *Document) Service(name string) *Service {
	for i := range d.Services {
		if d.Services[i].Name == name {
			return &d.Services[i]
		}
	}
	return nil
}

// String renders the document in DSN concrete syntax. Services keep their
// declaration order (topological, from the translator); parameters print in
// sorted order for determinism.
func (d *Document) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dsn %s {\n", strconv.Quote(d.Name))
	for _, s := range d.Services {
		fmt.Fprintf(&b, "  service %s {\n", strconv.Quote(s.Name))
		fmt.Fprintf(&b, "    kind: %s\n", s.Kind)
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "    param %s: %s\n", k, strconv.Quote(s.Params[k]))
		}
		if s.Schema != "" {
			fmt.Fprintf(&b, "    schema: %s\n", strconv.Quote(s.Schema))
		}
		b.WriteString("  }\n")
	}
	for _, l := range d.Links {
		fmt.Fprintf(&b, "  link %s -> %s {\n", strconv.Quote(l.From), strconv.Quote(l.To))
		fmt.Fprintf(&b, "    port: %d\n", l.Port)
		fmt.Fprintf(&b, "    qos { max_latency_ms: %d, min_bandwidth_kbps: %d }\n",
			l.QoS.MaxLatencyMS, l.QoS.MinBandwidthKbps)
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// Validate performs internal consistency checks on a document: unique
// service names and links referencing declared services.
func (d *Document) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("dsn: document needs a name")
	}
	seen := map[string]bool{}
	for _, s := range d.Services {
		if s.Name == "" {
			return fmt.Errorf("dsn: service with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("dsn: duplicate service %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, l := range d.Links {
		if !seen[l.From] {
			return fmt.Errorf("dsn: link from undeclared service %q", l.From)
		}
		if !seen[l.To] {
			return fmt.Errorf("dsn: link to undeclared service %q", l.To)
		}
		if l.QoS.MaxLatencyMS < 0 || l.QoS.MinBandwidthKbps < 0 {
			return fmt.Errorf("dsn: negative QoS on link %s -> %s", l.From, l.To)
		}
	}
	return nil
}
