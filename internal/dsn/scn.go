package dsn

import (
	"fmt"
	"sort"
	"strings"
)

// RequestKind enumerates the SCN network-configuration request types.
type RequestKind string

// The configuration requests SCN derives from a DSN document: spawn a
// process for each service on its assigned node, establish a flow per link,
// and attach the link's QoS requirements to the flow.
const (
	ReqCreateProcess RequestKind = "create_process"
	ReqCreateFlow    RequestKind = "create_flow"
	ReqSetQoS        RequestKind = "set_qos"
)

// Request is one SCN configuration command for the network platform.
type Request struct {
	Kind RequestKind `json:"kind"`
	// Service is the service the request concerns (create_process) or the
	// flow's upstream service (create_flow, set_qos).
	Service string `json:"service"`
	// Node is the placement target (create_process).
	Node string `json:"node,omitempty"`
	// PeerService is the flow's downstream service.
	PeerService string `json:"peer_service,omitempty"`
	// FlowID names the flow (create_flow, set_qos).
	FlowID string `json:"flow_id,omitempty"`
	// QoS carries the requirements (set_qos).
	QoS QoS `json:"qos,omitempty"`
}

// String renders the request as one SCN command line.
func (r Request) String() string {
	switch r.Kind {
	case ReqCreateProcess:
		return fmt.Sprintf("create_process service=%s node=%s", r.Service, r.Node)
	case ReqCreateFlow:
		return fmt.Sprintf("create_flow id=%s from=%s to=%s", r.FlowID, r.Service, r.PeerService)
	case ReqSetQoS:
		return fmt.Sprintf("set_qos flow=%s max_latency_ms=%d min_bandwidth_kbps=%d",
			r.FlowID, r.QoS.MaxLatencyMS, r.QoS.MinBandwidthKbps)
	default:
		return string(r.Kind)
	}
}

// FlowID names the flow established for a DSN link.
func FlowID(docName, from, to string, port int) string {
	return fmt.Sprintf("%s/%s->%s#%d", docName, from, to, port)
}

// ConfigRequests interprets a DSN document into the ordered SCN request
// sequence for the given service placement (service name -> node ID).
// Every service must be placed.
func ConfigRequests(doc *Document, placement map[string]string) ([]Request, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	var out []Request
	// Processes first, in a deterministic order.
	names := make([]string, 0, len(doc.Services))
	for _, s := range doc.Services {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		node, ok := placement[name]
		if !ok || node == "" {
			return nil, fmt.Errorf("dsn: service %q has no placement", name)
		}
		out = append(out, Request{Kind: ReqCreateProcess, Service: name, Node: node})
	}
	// Flows and QoS next, in link order.
	for _, l := range doc.Links {
		id := FlowID(doc.Name, l.From, l.To, l.Port)
		out = append(out, Request{
			Kind: ReqCreateFlow, Service: l.From, PeerService: l.To, FlowID: id,
		})
		out = append(out, Request{Kind: ReqSetQoS, Service: l.From, FlowID: id, QoS: l.QoS})
	}
	return out, nil
}

// Script renders a request sequence as an SCN command script, one request
// per line — what the demo shows when deploying a dataflow (P2).
func Script(reqs []Request) string {
	var b strings.Builder
	for _, r := range reqs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
