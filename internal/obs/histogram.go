package obs

import (
	"sync/atomic"
	"time"
)

// NumBounds is the number of finite histogram bucket bounds. The bounds are
// exponential in powers of two from 1µs to ~16.8s — wide enough to span a
// sub-microsecond append and a multi-second compaction in one fixed layout,
// so every latency histogram in the process shares bucket arithmetic.
const NumBounds = 25

// BucketBound returns the i-th finite upper bound in seconds
// (1µs · 2^i); i == NumBounds returns +Inf's stand-in, the last finite
// bound (quantiles clamp there).
func BucketBound(i int) float64 {
	if i >= NumBounds {
		i = NumBounds - 1
	}
	return float64(uint64(1000)<<i) / 1e9
}

// Histogram is a fixed-bucket latency histogram. Observe is two atomic adds
// on a preallocated array — cheap enough for the append hot path — and a
// nil *Histogram is a no-op, so disabled instrumentation costs one nil
// check. Snapshots are lock-free: the count is derived as the sum of the
// bucket counters, so a snapshot racing observers is always conserved
// (count == Σ buckets by construction) and monotone run to run.
type Histogram struct {
	buckets [NumBounds + 1]atomic.Uint64 // last bucket is +Inf
	sum     atomic.Int64                 // nanoseconds
}

// Observe records one duration. Non-positive durations land in the first
// bucket (coarse clocks legitimately measure zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < NumBounds && ns > int64(uint64(1000)<<i) {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(ns)
}

// Start begins a timing region: the zero time when the histogram is
// disabled (nil), so the pair Start/Since prices to two nil checks and no
// clock reads on the disabled path.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since observes the elapsed time of a region opened by Start. A zero start
// (disabled histogram) is a no-op.
func (h *Histogram) Since(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// HistSnapshot is one point-in-time read of a histogram.
type HistSnapshot struct {
	// Count is the observation total, always equal to the sum of Buckets.
	Count uint64
	// Sum is the total observed time.
	Sum time.Duration
	// Buckets holds per-bucket (non-cumulative) counts; the last entry is
	// the overflow (+Inf) bucket.
	Buckets [NumBounds + 1]uint64
}

// Snapshot reads the histogram. Concurrent Observes may or may not be
// included, but Count always equals the bucket sum, and successive
// snapshots never go backwards.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	// Read sum before the buckets: a racing Observe bumps sum first only
	// via its own ordering, so reading in this order can only under-report
	// Sum relative to Count — never attribute time to unseen observations.
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// Quantile estimates the q-th (0..1) latency quantile by linear
// interpolation inside the owning bucket; the overflow bucket clamps to the
// last finite bound. Zero when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	bounds := make([]float64, NumBounds+1)
	cum := make([]uint64, NumBounds+1)
	var running uint64
	for i := 0; i <= NumBounds; i++ {
		bounds[i] = BucketBound(i)
		running += s.Buckets[i]
		cum[i] = running
	}
	return time.Duration(QuantileFromBuckets(bounds, cum, q) * 1e9)
}

// QuantileFromBuckets estimates a quantile in seconds from cumulative
// bucket counts and their upper bounds (ascending; the last bound doubles
// as the +Inf clamp). It is the arithmetic shared by HistSnapshot.Quantile
// and the slctl metrics pretty-printer working from a parsed exposition.
func QuantileFromBuckets(bounds []float64, cumulative []uint64, q float64) float64 {
	if len(bounds) == 0 || len(bounds) != len(cumulative) {
		return 0
	}
	total := cumulative[len(cumulative)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	for i, c := range cumulative {
		if float64(c) < target {
			continue
		}
		upper := bounds[i]
		if i == len(bounds)-1 {
			return upper // overflow bucket: clamp to the last bound
		}
		lower := 0.0
		prev := uint64(0)
		if i > 0 {
			lower = bounds[i-1]
			prev = cumulative[i-1]
		}
		inBucket := float64(c - prev)
		if inBucket <= 0 {
			return upper
		}
		frac := (target - float64(prev)) / inBucket
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	return bounds[len(bounds)-1]
}
