package obs

import (
	"sort"
	"sync"
	"time"
)

// Trace collects the timed spans of one request so a query response can
// explain itself: per-shard fan-out, cold reads, cache hits, merge. A nil
// *Trace is a no-op everywhere, so tracing costs nothing unless the caller
// asked for it (?trace=1).
type Trace struct {
	name  string
	start time.Time

	mu    sync.Mutex
	spans []*Span
}

// NewTrace opens a trace rooted at now.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Span is one timed region inside a trace, with optional integer
// attributes (rows scanned, cache hits, ...).
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	dur   time.Duration
	attrs map[string]int64
	done  bool
}

// Start opens a span. Safe to call concurrently from the per-shard
// fan-out; returns nil when the trace itself is nil.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// SetInt sets an attribute on the span (overwriting a prior value).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] = v
	s.tr.mu.Unlock()
}

// AddInt adds to an attribute on the span.
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] += v
	s.tr.mu.Unlock()
}

// End closes the span. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = d
	}
	s.tr.mu.Unlock()
}

// SpanReport is the JSON shape of one span in a trace report.
type SpanReport struct {
	Name    string           `json:"name"`
	StartUS int64            `json:"start_us"`
	DurUS   int64            `json:"dur_us"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// TraceReport is the JSON shape of a finished trace, embedded in query
// responses under "trace".
type TraceReport struct {
	Name  string       `json:"name"`
	DurUS int64        `json:"dur_us"`
	Spans []SpanReport `json:"spans"`
}

// Report renders the trace. Unfinished spans report their duration as of
// now. Spans are ordered by start offset, then name, so the fan-out reads
// chronologically. Nil trace reports nil.
func (t *Trace) Report() *TraceReport {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	rep := &TraceReport{
		Name:  t.name,
		DurUS: now.Sub(t.start).Microseconds(),
		Spans: make([]SpanReport, 0, len(t.spans)),
	}
	for _, s := range t.spans {
		d := s.dur
		if !s.done {
			d = now.Sub(s.start)
		}
		var attrs map[string]int64
		if len(s.attrs) > 0 {
			attrs = make(map[string]int64, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
		}
		rep.Spans = append(rep.Spans, SpanReport{
			Name:    s.name,
			StartUS: s.start.Sub(t.start).Microseconds(),
			DurUS:   d.Microseconds(),
			Attrs:   attrs,
		})
	}
	t.mu.Unlock()
	sort.SliceStable(rep.Spans, func(i, j int) bool {
		if rep.Spans[i].StartUS != rep.Spans[j].StartUS {
			return rep.Spans[i].StartUS < rep.Spans[j].StartUS
		}
		return rep.Spans[i].Name < rep.Spans[j].Name
	})
	return rep
}
