package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Concurrent Observe against repeated Snapshot: every snapshot must be
// internally conserved (Count == Σ buckets — guaranteed by construction,
// asserted anyway) and the count sequence monotone; the final snapshot
// must account for every observation exactly once.
func TestHistogramConcurrentConserved(t *testing.T) {
	h := &Histogram{}
	const goroutines = 8
	const perG = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			s := h.Snapshot()
			var sum uint64
			for _, b := range s.Buckets {
				sum += b
			}
			if s.Count != sum {
				snapErr = fmt.Errorf("snapshot count %d != bucket sum %d", s.Count, sum)
				return
			}
			if s.Count < last {
				snapErr = fmt.Errorf("snapshot count went backwards: %d then %d", last, s.Count)
				return
			}
			last = s.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(g)
	}
	// Wait for observers, then stop the snapshotter.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	<-done

	if snapErr != nil {
		t.Fatal(snapErr)
	}
	final := h.Snapshot()
	if final.Count != goroutines*perG {
		t.Fatalf("final count = %d, want %d", final.Count, goroutines*perG)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations at ~1ms, 10 at ~100ms: p50 near 1ms, p99 near 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 < 100*time.Microsecond || p50 > 5*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 10*time.Millisecond || p99 > 300*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms", p99)
	}
	if got := s.Quantile(0); got < 0 {
		t.Fatalf("q0 = %v", got)
	}
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestNilAndNoopSafety(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "").Inc()
	r.Gauge("g", "", func() float64 { return 1 })
	h := r.Histogram("h_seconds", "")
	h.Observe(time.Second)
	if !h.Start().IsZero() {
		t.Fatal("nil histogram Start should return zero time")
	}
	h.Since(h.Start())
	r.Collect("c", func(e *Emitter) { e.Counter("y_total", "", 1) })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, buf.Len())
	}

	n := Noop()
	if c := n.Counter("x_total", ""); c != nil {
		t.Fatal("noop registry should hand out nil counters")
	}
	if h := n.Histogram("h_seconds", ""); h != nil {
		t.Fatal("noop registry should hand out nil histograms")
	}
	buf.Reset()
	if err := n.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("noop exposition: err=%v len=%d", err, buf.Len())
	}

	var tr *Trace
	sp := tr.Start("x")
	sp.SetInt("k", 1)
	sp.End()
	if rep := tr.Report(); rep != nil {
		t.Fatal("nil trace should report nil")
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sl_requests_total", "total requests").Add(7)
	r.CounterWith("sl_coded_total", Labels("code", "200", "route", `/api/"q"`), "by code").Add(3)
	r.Gauge("sl_live", "liveness", func() float64 { return 1 })
	h := r.Histogram("sl_lat_seconds", "latency")
	h.Observe(2 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(30 * time.Second) // overflow bucket
	r.Collect("aux", func(e *Emitter) {
		e.Counter("sl_aux_total", Labels("op", "join"), 11)
		e.Gauge("sl_aux_depth", "", 4.5)
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE sl_requests_total counter",
		"# TYPE sl_lat_seconds histogram",
		"# HELP sl_requests_total total requests",
		`le="+Inf"`,
		"sl_lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	series, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back own exposition: %v\n%s", err, text)
	}
	byKey := map[string]float64{}
	for _, s := range series {
		byKey[s.Key()] = s.Value
	}
	if byKey["sl_requests_total"] != 7 {
		t.Fatalf("requests_total = %v", byKey["sl_requests_total"])
	}
	if byKey[`sl_coded_total{code="200",route="/api/\"q\""}`] != 3 {
		t.Fatalf("labeled counter lost: %v", byKey)
	}
	if byKey[`sl_aux_total{op="join"}`] != 11 {
		t.Fatalf("collector counter lost: %v", byKey)
	}
	if byKey["sl_lat_seconds_count"] != 3 {
		t.Fatalf("hist count = %v", byKey["sl_lat_seconds_count"])
	}
	// Cumulative buckets: the +Inf bucket equals the count.
	if byKey[`sl_lat_seconds_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket = %v", byKey[`sl_lat_seconds_bucket{le="+Inf"}`])
	}
	// Buckets must be monotone non-decreasing in le order.
	var prev float64 = -1
	for i := 0; i <= NumBounds; i++ {
		le := "+Inf"
		if i < NumBounds {
			le = fmtG(BucketBound(i))
		}
		v, ok := byKey[`sl_lat_seconds_bucket{le="`+le+`"}`]
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if v < prev {
			t.Fatalf("bucket le=%s not cumulative: %v < %v", le, v, prev)
		}
		prev = v
	}
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"metric",                 // no value
		"metric abc",             // non-numeric value
		`metric{le=0.5} 1`,       // unquoted label value
		`metric{le="0.5} 1`,      // unterminated quote
		`metric{le="0.5"`,        // unterminated block
		`1metric 2`,              // bad name
		`metric{0bad="x"} 1`,     // bad label name
		"# BOGUS metric counter", // unknown comment keyword
		`metric{a="x"} 1 2 3`,    // trailing garbage
		`metric{a="\q"} 1`,       // bad escape
	}
	for _, line := range bad {
		if _, err := ParseExposition(strings.NewReader(line + "\n")); err == nil {
			t.Fatalf("ParseExposition accepted malformed line %q", line)
		}
	}
	good := "m_total 4\nm2{a=\"b\"} 1.5 1700000000000\n# HELP m_total h\n# TYPE m_total counter\n"
	series, err := ParseExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good exposition rejected: %v", err)
	}
	if len(series) != 2 {
		t.Fatalf("parsed %d series, want 2", len(series))
	}
}

func TestTraceReport(t *testing.T) {
	tr := NewTrace("query")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Start("shard")
			sp.SetInt("shard", int64(i))
			sp.AddInt("events", 10)
			sp.AddInt("events", 5)
			sp.End()
		}(i)
	}
	wg.Wait()
	m := tr.Start("merge")
	m.End()
	rep := tr.Report()
	if rep == nil || rep.Name != "query" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(rep.Spans))
	}
	seen := map[int64]bool{}
	for _, s := range rep.Spans {
		if s.DurUS < 0 || s.StartUS < 0 {
			t.Fatalf("negative span timing: %+v", s)
		}
		if s.Name == "shard" {
			if s.Attrs["events"] != 15 {
				t.Fatalf("attrs = %v", s.Attrs)
			}
			seen[s.Attrs["shard"]] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("shard spans = %v", seen)
	}
	// Report must marshal cleanly — it is embedded in HTTP responses.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileFromBucketsClamp(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	cum := []uint64{0, 0, 5} // everything in the overflow bucket
	if got := QuantileFromBuckets(bounds, cum, 0.99); got != 0.1 {
		t.Fatalf("overflow quantile = %v, want clamp to 0.1", got)
	}
	if got := QuantileFromBuckets(nil, nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if math.IsNaN(QuantileFromBuckets(bounds, []uint64{1, 2, 3}, 0.5)) {
		t.Fatal("NaN quantile")
	}
}
