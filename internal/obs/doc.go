// Package obs is streamLoader's dependency-free observability layer: a
// metrics registry (counters, gauges, fixed-bucket latency histograms),
// Prometheus text exposition, and a per-request trace span API.
//
// Every accessor is nil-safe and the Noop registry hands out nil handles,
// so instrumented code pays one nil check when observability is disabled.
// Histogram.Observe is two atomic adds — cheap enough for the warehouse
// append hot path. Named collectors (Registry.Collect) sample subsystem
// state (warehouse Stats, monitor rings) at scrape time so there is one
// source of truth rather than parallel snapshot paths.
//
// # Exported metrics
//
// Latency histograms (unit: seconds; exposed as cumulative _bucket /
// _sum / _count series with exponential bounds 1µs..~16.8s):
//
//	streamloader_warehouse_append_seconds   one Append or AppendBatch call (WAL write + in-memory insert + tap dispatch)
//	streamloader_warehouse_select_seconds   one Select/Count query (fan-out + merge)
//	streamloader_warehouse_aggregate_seconds one Aggregate query (fan-out + partial merge)
//	streamloader_wal_write_seconds          one WAL buffer write syscall
//	streamloader_wal_fsync_seconds          one WAL fsync
//	streamloader_cold_read_seconds          one cold-file chunk-range read (cache miss included)
//	streamloader_spill_seconds              one segment spill (encode + write + validate + swap)
//	streamloader_compaction_seconds         one shard compaction round (merge + write + swap)
//	streamloader_view_rebuild_seconds       one standing-view backfill/rebuild scan
//	streamloader_view_publish_seconds       one view snapshot broadcast to subscribers
//	streamloader_http_request_seconds{route} one HTTP request, labeled by mux pattern
//
// HTTP counters:
//
//	streamloader_http_requests_total{route,code}  requests by route and status code
//	streamloader_slow_queries_total               queries over the -slow-query threshold
//
// Warehouse snapshot (collector "warehouse"; gauges unless noted; byte
// gauges in bytes, the rest in events/segments/entries):
//
//	streamloader_warehouse_events, _sources, _segments, _segments_cold,
//	_views, _view_subscribers, _wal_bytes, _disk_bytes, _cold_cache_bytes
//
//	counters: streamloader_warehouse_evicted_total,
//	_segments_dropped_total, _segments_spilled_total,
//	_recovered_events_total, _cold_cache_hits_total,
//	_cold_cache_misses_total, _cold_chunk_stats_hits_total,
//	_compactions_total, _segments_compacted_total
//
// Monitor (collector "monitor"; the paper's Figure-3 facility, labeled
// {op,node}):
//
//	counters: streamloader_op_in_total, streamloader_op_out_total,
//	          streamloader_op_dropped_total   (tuples)
//	gauges:   streamloader_op_rate_in, streamloader_op_rate_out (tuples/s),
//	          streamloader_node_load{node}    (load fraction, 0..1)
//
// # Tracing
//
// NewTrace/Trace.Start produce a TraceReport embedded under "trace" in
// query and aggregate responses when the request carries ?trace=1: one
// span per shard scanned (attrs: events, segments scanned/pruned, cache
// hits/misses, chunk-stats answers) plus a final merge span.
package obs
