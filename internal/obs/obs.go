package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metrics: counters, gauges, histograms and
// named collectors, exposed together through WritePrometheus. Series are
// get-or-create by (name, labels), so independent subsystems — and the N
// shards of one warehouse — share a series by naming it identically.
//
// All methods are safe for concurrent use, and every accessor is nil-safe:
// a nil *Registry (and the Noop registry) hands out nil metric handles
// whose methods are no-ops, so instrumented code never branches on whether
// observability is enabled.
type Registry struct {
	noop bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*gaugeSeries
	hists      map[string]*Histogram
	help       map[string]string
	collectors map[string]func(*Emitter)
}

// NewRegistry creates an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*gaugeSeries{},
		hists:      map[string]*Histogram{},
		help:       map[string]string{},
		collectors: map[string]func(*Emitter){},
	}
}

// Noop returns a registry whose constructors hand out nil metrics and whose
// exposition is empty: instrumented code runs with zero overhead beyond a
// nil check. Benchmarks use it to price the instrumentation itself.
func Noop() *Registry { return &Registry{noop: true} }

// gaugeSeries is one registered gauge: a function read at exposition time.
type gaugeSeries struct{ fn func() float64 }

// Counter is a monotonically increasing series. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// describeLocked records a family's help text, first writer wins.
func (r *Registry) describeLocked(name, help string) {
	if help != "" && r.help[name] == "" {
		r.help[name] = help
	}
}

// Describe sets a family's help text without creating a series — used for
// families a collector emits at scrape time.
func (r *Registry) Describe(name, help string) {
	if r == nil || r.noop {
		return
	}
	r.mu.Lock()
	r.describeLocked(name, help)
	r.mu.Unlock()
}

// seriesKey joins a family name and a rendered label string into the
// registry map key.
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Counter returns the unlabeled counter series of a family, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, "", help)
}

// CounterWith returns the counter series (name, labels), creating it on
// first use. labels is a pre-rendered Prometheus label body (see Labels).
func (r *Registry) CounterWith(name, labels, help string) *Counter {
	if r == nil || r.noop {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[key]
	if c == nil {
		c = &Counter{}
		r.counters[key] = c
		r.describeLocked(name, help)
	}
	return c
}

// Gauge registers the unlabeled gauge series of a family, read through fn at
// exposition time. Re-registering replaces the function.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.GaugeWith(name, "", help, fn)
}

// GaugeWith registers the gauge series (name, labels).
func (r *Registry) GaugeWith(name, labels, help string, fn func() float64) {
	if r == nil || r.noop || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[seriesKey(name, labels)] = &gaugeSeries{fn: fn}
	r.describeLocked(name, help)
	r.mu.Unlock()
}

// Histogram returns the unlabeled histogram series of a family, creating it
// on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramWith(name, "", help)
}

// HistogramWith returns the histogram series (name, labels), creating it on
// first use.
func (r *Registry) HistogramWith(name, labels, help string) *Histogram {
	if r == nil || r.noop {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		h = &Histogram{}
		r.hists[key] = h
		r.describeLocked(name, help)
	}
	return h
}

// Collect registers a named collector: a function run at exposition time to
// emit series whose identity or value lives elsewhere (a stats snapshot, a
// dynamic op set). Registering the same id again replaces the function, so
// re-wiring a subsystem is idempotent.
func (r *Registry) Collect(id string, fn func(*Emitter)) {
	if r == nil || r.noop || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors[id] = fn
	r.mu.Unlock()
}

// Emitter receives the series a collector emits during one exposition.
type Emitter struct {
	counters map[string]float64
	gauges   map[string]float64
}

// Counter emits one counter-typed sample.
func (e *Emitter) Counter(name, labels string, v float64) {
	e.counters[seriesKey(name, labels)] = v
}

// Gauge emits one gauge-typed sample.
func (e *Emitter) Gauge(name, labels string, v float64) {
	e.gauges[seriesKey(name, labels)] = v
}

// Labels renders alternating key, value pairs into a Prometheus label body:
// Labels("route", "/metrics") == `route="/metrics"`. Values are escaped per
// the exposition format; keys must be valid label names already. A trailing
// odd argument is ignored.
func Labels(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		escapeLabelValue(&b, kv[i+1])
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

// splitSeriesKey undoes seriesKey for exposition rendering.
func splitSeriesKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// sortedKeys returns a map's keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
