package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, optional # HELP and a
// # TYPE per family, histograms as cumulative _bucket{le=...}, _sum
// (seconds) and _count series. Collectors run first, so series whose truth
// lives elsewhere (warehouse stats, monitor rings) are sampled at scrape
// time. A nil or noop registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil || r.noop {
		return nil
	}

	r.mu.Lock()
	collectors := make([]func(*Emitter), 0, len(r.collectors))
	for _, id := range sortedKeys(r.collectors) {
		collectors = append(collectors, r.collectors[id])
	}
	r.mu.Unlock()

	em := &Emitter{counters: map[string]float64{}, gauges: map[string]float64{}}
	for _, fn := range collectors {
		fn(em)
	}

	// Snapshot everything under the lock, then render unlocked: gauge
	// functions and histogram snapshots may take subsystem locks of their
	// own, but only gauge fns run under r.mu-free rendering here.
	r.mu.Lock()
	type sample struct {
		key string
		v   float64
	}
	families := map[string]*family{}
	fam := func(name, typ string) *family {
		f := families[name]
		if f == nil {
			f = &family{typ: typ, help: r.help[name]}
			families[name] = f
		}
		return f
	}
	for key, c := range r.counters {
		name, _ := splitSeriesKey(key)
		f := fam(name, "counter")
		f.samples = append(f.samples, seriesSample{key: key, v: float64(c.Value())})
	}
	for key, v := range em.counters {
		name, _ := splitSeriesKey(key)
		f := fam(name, "counter")
		f.samples = append(f.samples, seriesSample{key: key, v: v})
	}
	gaugeFns := map[string]func() float64{}
	for key, g := range r.gauges {
		gaugeFns[key] = g.fn
	}
	for key, v := range em.gauges {
		name, _ := splitSeriesKey(key)
		f := fam(name, "gauge")
		f.samples = append(f.samples, seriesSample{key: key, v: v})
	}
	histSeries := map[string]*Histogram{}
	for key, h := range r.hists {
		histSeries[key] = h
	}
	for key := range gaugeFns {
		name, _ := splitSeriesKey(key)
		fam(name, "gauge")
	}
	for key := range histSeries {
		name, _ := splitSeriesKey(key)
		fam(name, "histogram")
	}
	r.mu.Unlock()

	for key, fn := range gaugeFns {
		name, _ := splitSeriesKey(key)
		families[name].samples = append(families[name].samples, seriesSample{key: key, v: fn()})
	}
	for key, h := range histSeries {
		name, _ := splitSeriesKey(key)
		families[name].hists = append(families[name].hists, histSample{key: key, snap: h.Snapshot()})
	}

	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(families) {
		f := families[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.typ)
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].key < f.samples[j].key })
		for _, s := range f.samples {
			writeSample(bw, s.key, s.v)
		}
		sort.Slice(f.hists, func(i, j int) bool { return f.hists[i].key < f.hists[j].key })
		for _, hs := range f.hists {
			writeHistogram(bw, hs.key, hs.snap)
		}
	}
	return bw.Flush()
}

type seriesSample struct {
	key string
	v   float64
}

type histSample struct {
	key  string
	snap HistSnapshot
}

type family struct {
	typ     string
	help    string
	samples []seriesSample
	hists   []histSample
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func writeSample(w io.Writer, key string, v float64) {
	fmt.Fprintf(w, "%s %s\n", key, strconv.FormatFloat(v, 'g', -1, 64))
}

// writeHistogram renders one histogram series as cumulative buckets.
func writeHistogram(w io.Writer, key string, s HistSnapshot) {
	name, labels := splitSeriesKey(key)
	var cum uint64
	for i := 0; i <= NumBounds; i++ {
		cum += s.Buckets[i]
		le := "+Inf"
		if i < NumBounds {
			le = strconv.FormatFloat(BucketBound(i), 'g', -1, 64)
		}
		lb := Labels("le", le)
		if labels != "" {
			lb = labels + "," + lb
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, lb, cum)
	}
	sumKey := seriesKey(name+"_sum", labels)
	fmt.Fprintf(w, "%s %s\n", sumKey, strconv.FormatFloat(s.Sum.Seconds(), 'g', -1, 64))
	countKey := seriesKey(name+"_count", labels)
	fmt.Fprintf(w, "%s %d\n", countKey, s.Count)
}

// Series is one parsed sample from a text exposition.
type Series struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the series back to its name{labels} form with sorted label
// keys — stable for display and comparison.
func (s Series) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := sortedKeys(s.Labels)
	kv := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		kv = append(kv, k, s.Labels[k])
	}
	return s.Name + "{" + Labels(kv...) + "}"
}

// ParseExposition parses Prometheus text format strictly: every
// non-comment line must be `name[{labels}] value` with a parseable float
// and well-formed, properly quoted labels. It returns every sample (HELP
// and TYPE lines are validated for shape and skipped). Used by the slctl
// metrics client and by the CI smoke that fails on malformed exposition.
func ParseExposition(r io.Reader) ([]Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Series
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimLeft(rest, " ")
			word, _, _ := strings.Cut(rest, " ")
			if word != "HELP" && word != "TYPE" {
				return nil, fmt.Errorf("line %d: unknown comment %q", lineNo, line)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Series, error) {
	var s Series
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A trailing timestamp is allowed by the format; we emit none, and
	// reject anything beyond "value [timestamp]".
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at rest[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(rest string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(rest) && rest[i] == ' ' {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(rest) && rest[i] != '=' {
			i++
		}
		if i >= len(rest) {
			return 0, nil, fmt.Errorf("unterminated labels in %q", rest)
		}
		key := strings.TrimSpace(rest[start:i])
		if !validLabelName(key) {
			return 0, nil, fmt.Errorf("bad label name %q", key)
		}
		i++ // '='
		if i >= len(rest) || rest[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", rest)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(rest) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", rest)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, nil, fmt.Errorf("dangling escape in %q", rest)
				}
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in %q", rest[i+1], rest)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
		if i < len(rest) && rest[i] == ',' {
			i++
			continue
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, labels, nil
		}
		return 0, nil, fmt.Errorf("malformed labels in %q", rest)
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
