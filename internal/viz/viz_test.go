package viz

import (
	"strings"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

var t0 = time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)

var tweetSchema = stt.MustSchema([]stt.Field{
	stt.NewField("text", stt.KindString, ""),
	stt.NewField("retweets", stt.KindInt, ""),
}, stt.GranSecond, stt.SpatPoint, "social")

var tempSchema = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
}, stt.GranMinute, stt.SpatCellDistrict, "weather")

func tweet(lat, lon float64, text string) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: tweetSchema,
		Values: []stt.Value{stt.String(text), stt.Int(0)},
		Time:   t0, Lat: lat, Lon: lon, Theme: "social",
	}
	return tup.AlignSTT()
}

func temp(lat, lon, v float64, offset time.Duration) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: tempSchema,
		Values: []stt.Value{stt.Float(v)},
		Time:   t0.Add(offset), Lat: lat, Lon: lon, Theme: "weather",
	}
	return tup.AlignSTT()
}

func TestNewBoardValidation(t *testing.T) {
	if _, err := NewBoard(geo.Rect{Min: geo.Point{Lat: 99}}, 4, 4, ""); err == nil {
		t.Error("invalid region must fail")
	}
	if _, err := NewBoard(geo.Osaka, 0, 4, ""); err == nil {
		t.Error("zero cols must fail")
	}
}

func TestAcceptAndSnapshot(t *testing.T) {
	b, err := NewBoard(geo.Osaka, 10, 10, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	// Two readings in the SW corner cell, one in the NE corner.
	mustAccept(t, b, temp(34.41, 135.21, 20, 0))
	mustAccept(t, b, temp(34.41, 135.21, 30, time.Minute))
	mustAccept(t, b, temp(34.89, 135.69, 10, 2*time.Minute))
	// Outside the region: ignored.
	mustAccept(t, b, temp(35.5, 136.5, 99, 3*time.Minute))

	s := b.Snapshot()
	if s.Total != 3 {
		t.Fatalf("total = %d, want 3 (outside ignored)", s.Total)
	}
	if s.Counts[0][0] != 2 {
		t.Errorf("SW cell count = %d", s.Counts[0][0])
	}
	if s.Counts[9][9] != 1 {
		t.Errorf("NE cell count = %d", s.Counts[9][9])
	}
	if s.Means[0][0] != 25 {
		t.Errorf("SW mean = %v, want 25", s.Means[0][0])
	}
	if !s.Earliest.Equal(t0) || !s.Latest.Equal(t0.Add(2*time.Minute)) {
		t.Errorf("time bounds: %v .. %v", s.Earliest, s.Latest)
	}
	// Snapshot is a copy.
	s.Counts[0][0] = 999
	if b.Snapshot().Counts[0][0] != 2 {
		t.Error("snapshot must copy grids")
	}
}

func mustAccept(t *testing.T, b *Board, tup *stt.Tuple) {
	t.Helper()
	if err := b.Accept(tup); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryPointsLandInGrid(t *testing.T) {
	b, _ := NewBoard(geo.Osaka, 5, 5, "")
	// The exact max corner must clamp into the last cell, not panic.
	mustAccept(t, b, temp(geo.Osaka.Max.Lat, geo.Osaka.Max.Lon, 1, 0))
	if b.Snapshot().Counts[4][4] != 1 {
		t.Error("max corner not clamped into the grid")
	}
}

func TestTopics(t *testing.T) {
	b, _ := NewBoard(geo.Osaka, 2, 2, "")
	for i := 0; i < 5; i++ {
		mustAccept(t, b, tweet(34.45, 135.25, "torrential rain flooding the street"))
	}
	mustAccept(t, b, tweet(34.45, 135.25, "nice lunch in Umeda"))
	mustAccept(t, b, tweet(34.85, 135.65, "traffic jam on the loop"))

	top := b.TopTopics(0, 0, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Count != 5 {
		t.Errorf("top word count = %d, want 5", top[0].Count)
	}
	// Stopwords and short words are excluded.
	for _, tp := range top {
		if tp.Word == "the" || len(tp.Word) < 3 {
			t.Errorf("bad topic %q", tp.Word)
		}
	}
	// The NE cell has its own topics.
	ne := b.TopTopics(1, 1, 10)
	found := false
	for _, tp := range ne {
		if tp.Word == "traffic" {
			found = true
		}
	}
	if !found {
		t.Errorf("NE topics: %v", ne)
	}
	// Global aggregation.
	global := b.GlobalTopTopics(2)
	if len(global) != 2 || global[0].Count < 5 {
		t.Errorf("global = %v", global)
	}
	// Empty cell: no topics.
	if len(b.TopTopics(0, 1, 5)) != 0 {
		t.Error("empty cell must have no topics")
	}
}

func TestTopicDeterminism(t *testing.T) {
	b, _ := NewBoard(geo.Osaka, 1, 1, "")
	mustAccept(t, b, tweet(34.5, 135.4, "alpha beta gamma"))
	first := b.TopTopics(0, 0, 3)
	for i := 0; i < 10; i++ {
		again := b.TopTopics(0, 0, 3)
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("tie-broken order must be stable")
			}
		}
	}
}

func TestRenderASCII(t *testing.T) {
	b, _ := NewBoard(geo.Osaka, 8, 4, "")
	for i := 0; i < 50; i++ {
		mustAccept(t, b, temp(34.41, 135.21, 20, time.Duration(i)*time.Minute)) // SW corner
	}
	mustAccept(t, b, temp(34.89, 135.69, 20, 0)) // NE corner
	out := b.RenderASCII()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	// North on top: the hot SW cell appears in the last line, darkest shade.
	last := lines[len(lines)-1]
	if last[0] != '@' {
		t.Errorf("SW cell shade = %q, want '@':\n%s", last[0], out)
	}
	// NE corner has a light but non-space shade on the first grid row.
	if lines[1][7] == ' ' {
		t.Errorf("NE cell empty:\n%s", out)
	}
	if !strings.Contains(lines[0], "total=51") {
		t.Errorf("header: %s", lines[0])
	}
}

func TestRenderEmptyBoard(t *testing.T) {
	b, _ := NewBoard(geo.Osaka, 4, 2, "")
	out := b.RenderASCII()
	if !strings.Contains(out, "total=0") {
		t.Error("empty render")
	}
}

func TestTopicWords(t *testing.T) {
	words := topicWords("Heavy RAIN, rain & more rain in Umeda!! 123x")
	counts := map[string]int{}
	for _, w := range words {
		counts[w]++
	}
	if counts["rain"] != 3 || counts["heavy"] != 1 || counts["umeda"] != 1 {
		t.Errorf("words = %v", words)
	}
	if counts["in"] != 0 {
		t.Error("stopword leaked")
	}
}
