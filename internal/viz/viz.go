// Package viz is StreamLoader's stand-in for NICT's Sticker visualization
// tool [11] and the mTrend geo-microblogging trend discovery it builds on:
// spatio-temporal aggregation of dataflow output into grid heatmaps, per-cell
// top-k topic trends, and terminal-friendly rendering. Dataflows select the
// "viz" sink to feed it.
package viz

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// Board accumulates dataflow output for visualization. Safe for concurrent
// use; a deployment's viz sinks feed it while HTTP handlers render it.
type Board struct {
	// Region is the visualized area.
	Region geo.Rect
	// Cols/Rows is the heatmap resolution.
	Cols, Rows int

	mu     sync.RWMutex
	counts [][]int     // [row][col] event counts
	values [][]float64 // [row][col] sum of the tracked measure
	nval   [][]int     // [row][col] number of measure samples
	topics map[string]map[string]int
	// topics: cell key -> word -> count (the mTrend per-cell topic counts)
	measure  string // payload field aggregated into values
	earliest time.Time
	latest   time.Time
	total    int
}

// NewBoard creates a board over a region at the given grid resolution.
// measure names the numeric payload field averaged per cell (may be empty
// for count-only heatmaps).
func NewBoard(region geo.Rect, cols, rows int, measure string) (*Board, error) {
	if !region.Valid() {
		return nil, fmt.Errorf("viz: invalid region %v", region)
	}
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("viz: grid must be at least 1x1, got %dx%d", cols, rows)
	}
	b := &Board{
		Region: region, Cols: cols, Rows: rows,
		topics:  map[string]map[string]int{},
		measure: measure,
	}
	b.counts = make([][]int, rows)
	b.values = make([][]float64, rows)
	b.nval = make([][]int, rows)
	for r := 0; r < rows; r++ {
		b.counts[r] = make([]int, cols)
		b.values[r] = make([]float64, cols)
		b.nval[r] = make([]int, cols)
	}
	return b, nil
}

// cellOf maps a position to grid coordinates; ok is false outside the region.
func (b *Board) cellOf(lat, lon float64) (row, col int, ok bool) {
	if !b.Region.Contains(geo.Point{Lat: lat, Lon: lon}) {
		return 0, 0, false
	}
	fr := (lat - b.Region.Min.Lat) / (b.Region.Max.Lat - b.Region.Min.Lat)
	fc := (lon - b.Region.Min.Lon) / (b.Region.Max.Lon - b.Region.Min.Lon)
	row = int(fr * float64(b.Rows))
	col = int(fc * float64(b.Cols))
	if row >= b.Rows {
		row = b.Rows - 1
	}
	if col >= b.Cols {
		col = b.Cols - 1
	}
	return row, col, true
}

// Accept ingests one tuple: bumps the cell count, accumulates the measure if
// present, and extracts topic words from any "text" field (mTrend-style).
func (b *Board) Accept(t *stt.Tuple) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	row, col, ok := b.cellOf(t.Lat, t.Lon)
	if !ok {
		return nil // outside the board: ignore quietly
	}
	b.total++
	b.counts[row][col]++
	if b.earliest.IsZero() || t.Time.Before(b.earliest) {
		b.earliest = t.Time
	}
	if t.Time.After(b.latest) {
		b.latest = t.Time
	}
	if b.measure != "" {
		if v, okv := t.Get(b.measure); okv && v.Kind().Numeric() {
			b.values[row][col] += v.AsFloat()
			b.nval[row][col]++
		}
	}
	if v, okv := t.Get("text"); okv && v.Kind() == stt.KindString {
		key := cellKey(row, col)
		words := b.topics[key]
		if words == nil {
			words = map[string]int{}
			b.topics[key] = words
		}
		for _, word := range topicWords(v.AsString()) {
			words[word]++
		}
	}
	return nil
}

// Close is a no-op; Board satisfies the executor Sink interface.
func (b *Board) Close() error { return nil }

func cellKey(row, col int) string { return fmt.Sprintf("%d,%d", row, col) }

// stopwords excluded from topic extraction.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "in": true, "on": true, "at": true,
	"is": true, "are": true, "was": true, "to": true, "of": true, "and": true,
	"for": true, "with": true, "my": true, "our": true, "this": true,
	"today": true, "tonight": true, "near": true, "right": true, "now": true,
	"will": true, "not": true, "it": true, "so": true,
}

// topicWords tokenizes a message into candidate topic words.
func topicWords(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	var out []string
	for _, f := range fields {
		if len(f) < 3 || stopwords[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Topic is one trending word with its count.
type Topic struct {
	Word  string `json:"word"`
	Count int    `json:"count"`
}

// TopTopics returns the k most frequent topic words of a cell, the mTrend
// "discovery of topic movements" primitive. Deterministic: ties break
// alphabetically.
func (b *Board) TopTopics(row, col, k int) []Topic {
	b.mu.RLock()
	defer b.mu.RUnlock()
	words := b.topics[cellKey(row, col)]
	out := make([]Topic, 0, len(words))
	for w, c := range words {
		out = append(out, Topic{Word: w, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Word < out[j].Word
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// GlobalTopTopics aggregates topics across all cells.
func (b *Board) GlobalTopTopics(k int) []Topic {
	b.mu.RLock()
	defer b.mu.RUnlock()
	agg := map[string]int{}
	for _, words := range b.topics {
		for w, c := range words {
			agg[w] += c
		}
	}
	out := make([]Topic, 0, len(agg))
	for w, c := range agg {
		out = append(out, Topic{Word: w, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Word < out[j].Word
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Snapshot is a JSON-able view of the board.
type Snapshot struct {
	Region   geo.Rect    `json:"region"`
	Cols     int         `json:"cols"`
	Rows     int         `json:"rows"`
	Total    int         `json:"total"`
	Earliest time.Time   `json:"earliest"`
	Latest   time.Time   `json:"latest"`
	Counts   [][]int     `json:"counts"`
	Means    [][]float64 `json:"means,omitempty"`
	Measure  string      `json:"measure,omitempty"`
}

// Snapshot copies the current grids.
func (b *Board) Snapshot() Snapshot {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s := Snapshot{
		Region: b.Region, Cols: b.Cols, Rows: b.Rows,
		Total: b.total, Earliest: b.earliest, Latest: b.latest,
		Measure: b.measure,
	}
	s.Counts = make([][]int, b.Rows)
	for r := 0; r < b.Rows; r++ {
		s.Counts[r] = append([]int(nil), b.counts[r]...)
	}
	if b.measure != "" {
		s.Means = make([][]float64, b.Rows)
		for r := 0; r < b.Rows; r++ {
			s.Means[r] = make([]float64, b.Cols)
			for c := 0; c < b.Cols; c++ {
				if b.nval[r][c] > 0 {
					s.Means[r][c] = b.values[r][c] / float64(b.nval[r][c])
				}
			}
		}
	}
	return s
}

// shades maps intensity to ASCII, light to dark.
var shades = []byte(" .:-=+*#%@")

// RenderASCII draws the count heatmap as text, north at the top.
func (b *Board) RenderASCII() string {
	s := b.Snapshot()
	maxC := 0
	for _, row := range s.Counts {
		for _, c := range row {
			if c > maxC {
				maxC = c
			}
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "viz %dx%d total=%d region=%s\n", s.Cols, s.Rows, s.Total, s.Region)
	for r := s.Rows - 1; r >= 0; r-- { // north (max lat) on top
		for c := 0; c < s.Cols; c++ {
			idx := 0
			if count := s.Counts[r][c]; count > 0 && maxC > 0 {
				idx = count * (len(shades) - 1) / maxC
				if idx == 0 {
					idx = 1 // non-empty cells are never blank
				}
			}
			out.WriteByte(shades[idx])
		}
		out.WriteByte('\n')
	}
	return out.String()
}
