// Package geo provides the spatial substrate of StreamLoader: points,
// rectangles, great-circle distance, grid cells, and the unit and
// coordinate-system conversion registries that back the Transform operation
// of Table 1 ("changing the unit of measure (e.g. from yards to meters) or
// geographical coordinates (from one standard to another one)").
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by distance computations.
const EarthRadiusMeters = 6371000.0

// Point is a WGS84 coordinate in decimal degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Valid reports whether the point lies in the legal lat/lon ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String renders the point as "lat,lon".
func (p Point) String() string { return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon) }

// DistanceMeters returns the haversine great-circle distance to q in meters.
func (p Point) DistanceMeters(q Point) float64 {
	const rad = math.Pi / 180
	lat1, lon1 := p.Lat*rad, p.Lon*rad
	lat2, lon2 := q.Lat*rad, q.Lon*rad
	dLat, dLon := lat2-lat1, lon2-lon1
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Rect is an axis-aligned geographic rectangle. Min is the south-west
// corner, Max the north-east corner. Rectangles never wrap the antimeridian;
// the Osaka-scale scenarios of the paper do not need that.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// NewRect builds a rectangle from any two opposite corners, normalizing the
// corner order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{Lat: math.Min(a.Lat, b.Lat), Lon: math.Min(a.Lon, b.Lon)},
		Max: Point{Lat: math.Max(a.Lat, b.Lat), Lon: math.Max(a.Lon, b.Lon)},
	}
}

// Valid reports whether both corners are valid and ordered.
func (r Rect) Valid() bool {
	return r.Min.Valid() && r.Max.Valid() &&
		r.Min.Lat <= r.Max.Lat && r.Min.Lon <= r.Max.Lon
}

// Contains reports whether p lies inside the rectangle (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.Min.Lat && p.Lat <= r.Max.Lat &&
		p.Lon >= r.Min.Lon && p.Lon <= r.Max.Lon
}

// Intersects reports whether two rectangles overlap (touching counts).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.Lat <= o.Max.Lat && r.Max.Lat >= o.Min.Lat &&
		r.Min.Lon <= o.Max.Lon && r.Max.Lon >= o.Min.Lon
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{Lat: (r.Min.Lat + r.Max.Lat) / 2, Lon: (r.Min.Lon + r.Max.Lon) / 2}
}

// Expand grows the rectangle by d degrees on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{Lat: r.Min.Lat - d, Lon: r.Min.Lon - d},
		Max: Point{Lat: r.Max.Lat + d, Lon: r.Max.Lon + d},
	}
}

// String renders the rectangle as "min..max".
func (r Rect) String() string { return r.Min.String() + ".." + r.Max.String() }

// Cell identifies a grid cell: integer coordinates at a given cell size in
// degrees. Cells are the spatial-granularity objects of the STT model and
// the bucketing unit of the warehouse spatial index and the viz heatmaps.
type Cell struct {
	X, Y int64 // lon index, lat index
}

// CellOf maps a point to its cell at the given cell size (degrees).
// A non-positive size yields the degenerate cell of the raw point floor.
func CellOf(p Point, sizeDeg float64) Cell {
	if sizeDeg <= 0 {
		sizeDeg = 1e-9
	}
	return Cell{X: floorDiv(p.Lon, sizeDeg), Y: floorDiv(p.Lat, sizeDeg)}
}

// Origin returns the south-west corner of the cell at the given size.
func (c Cell) Origin(sizeDeg float64) Point {
	return Point{Lat: float64(c.Y) * sizeDeg, Lon: float64(c.X) * sizeDeg}
}

// Rect returns the rectangle covered by the cell at the given size.
func (c Cell) Rect(sizeDeg float64) Rect {
	o := c.Origin(sizeDeg)
	return Rect{Min: o, Max: Point{Lat: o.Lat + sizeDeg, Lon: o.Lon + sizeDeg}}
}

func floorDiv(v, size float64) int64 {
	q := v / size
	f := math.Floor(q)
	return int64(f)
}

// Osaka is the rectangle the paper's demo scenario monitors: the greater
// Osaka area used by the NICT testbed sensors.
var Osaka = Rect{
	Min: Point{Lat: 34.40, Lon: 135.20},
	Max: Point{Lat: 34.90, Lon: 135.70},
}

// OsakaCenter is the approximate centre of Osaka city.
var OsakaCenter = Point{Lat: 34.6937, Lon: 135.5023}
