package geo

import (
	"fmt"
	"sort"
)

// The unit registry backs Transform's unit-of-measure conversions. Units are
// grouped into dimensions; within a dimension conversion is affine
// (value*factor + offset relative to the dimension's base unit), which covers
// every unit the paper's sensor classes need, including temperatures.

// UnitDim names a physical dimension.
type UnitDim string

// Dimensions covered by the registry.
const (
	DimLength      UnitDim = "length"
	DimSpeed       UnitDim = "speed"
	DimTemperature UnitDim = "temperature"
	DimPressure    UnitDim = "pressure"
	DimRainRate    UnitDim = "rain-rate"
	DimRatio       UnitDim = "ratio"
)

type unitDef struct {
	dim    UnitDim
	factor float64 // multiply by factor ...
	offset float64 // ... then add offset, to reach the dimension base unit
}

// The base units are: meter, m/s, celsius, hPa, mm/h, fraction.
var units = map[string]unitDef{
	// length
	"m":    {DimLength, 1, 0},
	"km":   {DimLength, 1000, 0},
	"cm":   {DimLength, 0.01, 0},
	"mm":   {DimLength, 0.001, 0},
	"yard": {DimLength, 0.9144, 0},
	"foot": {DimLength, 0.3048, 0},
	"mile": {DimLength, 1609.344, 0},
	// speed
	"m/s":  {DimSpeed, 1, 0},
	"km/h": {DimSpeed, 1.0 / 3.6, 0},
	"mph":  {DimSpeed, 0.44704, 0},
	"knot": {DimSpeed, 0.514444, 0},
	// temperature
	"celsius":    {DimTemperature, 1, 0},
	"fahrenheit": {DimTemperature, 5.0 / 9.0, -32 * 5.0 / 9.0},
	"kelvin":     {DimTemperature, 1, -273.15},
	// pressure
	"hPa":  {DimPressure, 1, 0},
	"kPa":  {DimPressure, 10, 0},
	"mmHg": {DimPressure, 1.333224, 0},
	"atm":  {DimPressure, 1013.25, 0},
	// rain rate
	"mm/h":   {DimRainRate, 1, 0},
	"inch/h": {DimRainRate, 25.4, 0},
	// ratio
	"fraction": {DimRatio, 1, 0},
	"percent":  {DimRatio, 0.01, 0},
}

// KnownUnit reports whether the unit name is registered.
func KnownUnit(name string) bool {
	_, ok := units[name]
	return ok
}

// UnitDimension returns the dimension of a registered unit.
func UnitDimension(name string) (UnitDim, error) {
	u, ok := units[name]
	if !ok {
		return "", fmt.Errorf("geo: unknown unit %q", name)
	}
	return u.dim, nil
}

// Units returns the sorted names of all registered units (for diagnostics).
func Units() []string {
	out := make([]string, 0, len(units))
	for name := range units {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ConvertUnit converts value from one unit to another within the same
// dimension. It returns an error for unknown units or dimension mismatches
// ("yards to celsius").
func ConvertUnit(value float64, from, to string) (float64, error) {
	if from == to {
		return value, nil
	}
	uf, ok := units[from]
	if !ok {
		return 0, fmt.Errorf("geo: unknown source unit %q", from)
	}
	ut, ok := units[to]
	if !ok {
		return 0, fmt.Errorf("geo: unknown target unit %q", to)
	}
	if uf.dim != ut.dim {
		return 0, fmt.Errorf("geo: cannot convert %s (%s) to %s (%s)",
			from, uf.dim, to, ut.dim)
	}
	base := value*uf.factor + uf.offset
	return (base - ut.offset) / ut.factor, nil
}

// CoordSystem names a geodetic datum supported by coordinate conversion.
type CoordSystem string

// Supported coordinate systems. Tokyo is the legacy Japanese datum
// (Tokyo97/Bessel) still used by some of the older sensors the paper's NICT
// deployment aggregates; conversion uses the standard three-parameter
// Molodensky-style approximation adequate at sensor-network scale
// (sub-meter error within Japan).
const (
	WGS84 CoordSystem = "wgs84"
	Tokyo CoordSystem = "tokyo"
)

// ParseCoordSystem validates a coordinate-system name.
func ParseCoordSystem(s string) (CoordSystem, error) {
	switch CoordSystem(s) {
	case WGS84, Tokyo:
		return CoordSystem(s), nil
	}
	return "", fmt.Errorf("geo: unknown coordinate system %q", s)
}

// ConvertCoord converts a point between coordinate systems. The Tokyo⇄WGS84
// conversion uses the widely published approximation formulas:
//
//	wgsLat = tkyLat - 0.00010695*tkyLat + 0.000017464*tkyLon + 0.0046017
//	wgsLon = tkyLon - 0.000046038*tkyLat - 0.000083043*tkyLon + 0.010040
//
// and the published inverse. Round-tripping is accurate to ~1e-6 degrees
// (≈10 cm) within Japan.
func ConvertCoord(p Point, from, to CoordSystem) (Point, error) {
	if from == to {
		return p, nil
	}
	switch {
	case from == Tokyo && to == WGS84:
		return Point{
			Lat: p.Lat - 0.00010695*p.Lat + 0.000017464*p.Lon + 0.0046017,
			Lon: p.Lon - 0.000046038*p.Lat - 0.000083043*p.Lon + 0.010040,
		}, nil
	case from == WGS84 && to == Tokyo:
		return Point{
			Lat: p.Lat + 0.00010696*p.Lat - 0.000017467*p.Lon - 0.0046020,
			Lon: p.Lon + 0.000046047*p.Lat + 0.000083049*p.Lon - 0.010041,
		}, nil
	default:
		return Point{}, fmt.Errorf("geo: unsupported conversion %s -> %s", from, to)
	}
}
