package geo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPointValid(t *testing.T) {
	if !OsakaCenter.Valid() {
		t.Error("Osaka center must be valid")
	}
	invalid := []Point{
		{Lat: 91, Lon: 0}, {Lat: -91, Lon: 0},
		{Lat: 0, Lon: 181}, {Lat: 0, Lon: -181},
	}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v must be invalid", p)
		}
	}
}

func TestDistanceMeters(t *testing.T) {
	// Osaka to Kyoto is roughly 43 km.
	kyoto := Point{Lat: 35.0116, Lon: 135.7681}
	d := OsakaCenter.DistanceMeters(kyoto)
	if d < 40000 || d < 0 || d > 46000 {
		t.Errorf("Osaka-Kyoto distance = %.0f m, want ~43 km", d)
	}
	if OsakaCenter.DistanceMeters(OsakaCenter) != 0 {
		t.Error("distance to self must be 0")
	}
	// One degree of latitude is ~111 km anywhere.
	a := Point{Lat: 10, Lon: 50}
	b := Point{Lat: 11, Lon: 50}
	if d := a.DistanceMeters(b); math.Abs(d-111195) > 500 {
		t.Errorf("1 degree latitude = %.0f m, want ~111195", d)
	}
}

func TestQuickDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		p := Point{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		q := Point{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d1, d2 := p.DistanceMeters(q), q.DistanceMeters(p)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{Lat: 35, Lon: 136}, Point{Lat: 34, Lon: 135})
	if r.Min.Lat != 34 || r.Min.Lon != 135 || r.Max.Lat != 35 || r.Max.Lon != 136 {
		t.Errorf("NewRect = %v", r)
	}
	if !r.Valid() {
		t.Error("normalized rect must be valid")
	}
}

func TestRectContains(t *testing.T) {
	if !Osaka.Contains(OsakaCenter) {
		t.Error("Osaka rect must contain its center")
	}
	if Osaka.Contains(Point{Lat: 35.0116, Lon: 135.7681}) {
		t.Error("Kyoto is outside the Osaka rect")
	}
	// Inclusive bounds.
	if !Osaka.Contains(Osaka.Min) || !Osaka.Contains(Osaka.Max) {
		t.Error("bounds are inclusive")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{Lat: 0, Lon: 0}, Point{Lat: 2, Lon: 2})
	b := NewRect(Point{Lat: 1, Lon: 1}, Point{Lat: 3, Lon: 3})
	c := NewRect(Point{Lat: 5, Lon: 5}, Point{Lat: 6, Lon: 6})
	touch := NewRect(Point{Lat: 2, Lon: 2}, Point{Lat: 4, Lon: 4})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b overlap")
	}
	if a.Intersects(c) {
		t.Error("a and c are disjoint")
	}
	if !a.Intersects(touch) {
		t.Error("touching rectangles intersect")
	}
}

func TestRectCenterExpand(t *testing.T) {
	r := NewRect(Point{Lat: 0, Lon: 0}, Point{Lat: 2, Lon: 4})
	c := r.Center()
	if c.Lat != 1 || c.Lon != 2 {
		t.Errorf("center = %v", c)
	}
	e := r.Expand(1)
	if e.Min.Lat != -1 || e.Max.Lon != 5 {
		t.Errorf("expand = %v", e)
	}
	if !strings.Contains(r.String(), "..") {
		t.Error("rect string format")
	}
}

func TestCellOf(t *testing.T) {
	c := CellOf(Point{Lat: 34.6937, Lon: 135.5023}, 0.1)
	if c.Y != 346 || c.X != 1355 {
		t.Errorf("cell = %+v", c)
	}
	neg := CellOf(Point{Lat: -0.05, Lon: -0.05}, 0.1)
	if neg.X != -1 || neg.Y != -1 {
		t.Errorf("negative coords floor toward -inf: %+v", neg)
	}
	// Degenerate size does not panic.
	_ = CellOf(Point{Lat: 1, Lon: 1}, 0)
}

func TestCellRectRoundTrip(t *testing.T) {
	p := Point{Lat: 34.6937, Lon: 135.5023}
	c := CellOf(p, 0.1)
	r := c.Rect(0.1)
	if !r.Contains(p) {
		t.Errorf("cell rect %v must contain %v", r, p)
	}
	o := c.Origin(0.1)
	if math.Abs(o.Lat-34.6) > 1e-9 || math.Abs(o.Lon-135.5) > 1e-9 {
		t.Errorf("origin = %v", o)
	}
}

// Property: every point is inside the rect of its own cell.
func TestQuickCellContainment(t *testing.T) {
	f := func(lat, lon float64, size8 uint8) bool {
		p := Point{Lat: math.Mod(lat, 90), Lon: math.Mod(lon, 180)}
		sizes := []float64{0.001, 0.01, 0.1, 1}
		size := sizes[int(size8)%len(sizes)]
		r := CellOf(p, size).Rect(size)
		// Allow an epsilon at boundaries due to float division.
		r = r.Expand(1e-9)
		return r.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestConvertUnit(t *testing.T) {
	cases := []struct {
		val      float64
		from, to string
		want     float64
	}{
		{100, "yard", "m", 91.44},
		{1, "km", "m", 1000},
		{1, "mile", "km", 1.609344},
		{36, "km/h", "m/s", 10},
		{212, "fahrenheit", "celsius", 100},
		{0, "celsius", "fahrenheit", 32},
		{0, "celsius", "kelvin", 273.15},
		{1, "atm", "hPa", 1013.25},
		{1, "inch/h", "mm/h", 25.4},
		{50, "percent", "fraction", 0.5},
		{3, "m", "m", 3},
	}
	for _, c := range cases {
		got, err := ConvertUnit(c.val, c.from, c.to)
		if err != nil {
			t.Errorf("%v %s->%s: %v", c.val, c.from, c.to, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%v %s->%s = %v, want %v", c.val, c.from, c.to, got, c.want)
		}
	}
}

func TestConvertUnitErrors(t *testing.T) {
	if _, err := ConvertUnit(1, "cubit", "m"); err == nil {
		t.Error("unknown source unit must fail")
	}
	if _, err := ConvertUnit(1, "m", "cubit"); err == nil {
		t.Error("unknown target unit must fail")
	}
	if _, err := ConvertUnit(1, "yard", "celsius"); err == nil {
		t.Error("cross-dimension conversion must fail")
	}
}

func TestUnitRegistry(t *testing.T) {
	if !KnownUnit("celsius") || KnownUnit("cubit") {
		t.Error("KnownUnit")
	}
	d, err := UnitDimension("mph")
	if err != nil || d != DimSpeed {
		t.Error("UnitDimension(mph)")
	}
	if _, err := UnitDimension("cubit"); err == nil {
		t.Error("UnitDimension(cubit) must fail")
	}
	names := Units()
	if len(names) < 15 {
		t.Errorf("registry too small: %d units", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Units() must be sorted and unique")
		}
	}
}

// Property: unit conversion round-trips within the same dimension.
func TestQuickUnitRoundTrip(t *testing.T) {
	pairs := [][2]string{
		{"yard", "m"}, {"mile", "km"}, {"fahrenheit", "celsius"},
		{"kelvin", "celsius"}, {"mph", "km/h"}, {"percent", "fraction"},
		{"inch/h", "mm/h"}, {"atm", "kPa"},
	}
	f := func(v float64, pick uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		p := pairs[int(pick)%len(pairs)]
		mid, err := ConvertUnit(v, p[0], p[1])
		if err != nil {
			return false
		}
		back, err := ConvertUnit(mid, p[1], p[0])
		if err != nil {
			return false
		}
		return math.Abs(back-v) <= 1e-6*(1+math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParseCoordSystem(t *testing.T) {
	if s, err := ParseCoordSystem("wgs84"); err != nil || s != WGS84 {
		t.Error("wgs84")
	}
	if s, err := ParseCoordSystem("tokyo"); err != nil || s != Tokyo {
		t.Error("tokyo")
	}
	if _, err := ParseCoordSystem("mars"); err == nil {
		t.Error("mars must fail")
	}
}

func TestConvertCoord(t *testing.T) {
	// Identity.
	p, err := ConvertCoord(OsakaCenter, WGS84, WGS84)
	if err != nil || p != OsakaCenter {
		t.Error("identity conversion")
	}
	// Tokyo->WGS84 moves points ~400 m NW in Japan.
	w, err := ConvertCoord(OsakaCenter, Tokyo, WGS84)
	if err != nil {
		t.Fatal(err)
	}
	d := w.DistanceMeters(OsakaCenter)
	if d < 200 || d > 700 {
		t.Errorf("datum shift = %.0f m, want 200-700", d)
	}
	if _, err := ConvertCoord(OsakaCenter, "mars", WGS84); err == nil {
		t.Error("unknown system must fail")
	}
}

// Property: Tokyo<->WGS84 round-trips to ~10 cm within Japan.
func TestQuickCoordRoundTrip(t *testing.T) {
	f := func(dlat, dlon float64) bool {
		p := Point{
			Lat: 34 + math.Mod(math.Abs(dlat), 8),   // 34..42 N
			Lon: 130 + math.Mod(math.Abs(dlon), 12), // 130..142 E
		}
		mid, err := ConvertCoord(p, WGS84, Tokyo)
		if err != nil {
			return false
		}
		back, err := ConvertCoord(mid, Tokyo, WGS84)
		if err != nil {
			return false
		}
		return back.DistanceMeters(p) < 1.0 // < 1 m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
