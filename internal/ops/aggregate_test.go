package ops

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

func TestParseAggFunc(t *testing.T) {
	for _, s := range []string{"COUNT", "count", "Avg", "SUM", "min", "MAX"} {
		if _, err := ParseAggFunc(s); err != nil {
			t.Errorf("ParseAggFunc(%q): %v", s, err)
		}
	}
	if _, err := ParseAggFunc("MEDIAN"); err == nil {
		t.Error("MEDIAN must fail")
	}
}

func TestAggregateAvgByStation(t *testing.T) {
	op, err := NewAggregate("avg", time.Minute, []string{"station"}, AggAvg, "temperature", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind() != KindAggregate {
		t.Error("kind")
	}
	// Output schema: station + avg_temperature with the source unit.
	out := op.OutSchema()
	if out.NumFields() != 2 || out.IndexOf("station") != 0 || out.IndexOf("avg_temperature") != 1 {
		t.Fatalf("schema = %s", out)
	}
	if f, _ := out.Lookup("avg_temperature"); f.Unit != "celsius" {
		t.Error("aggregate must carry the unit through")
	}

	// Two stations over two windows.
	tuples := []*stt.Tuple{
		wtuple(0, 20, "a"), wtuple(10*time.Second, 30, "a"), // window 0: avg 25
		wtuple(20*time.Second, 10, "b"), // window 0: avg 10
		wtuple(61*time.Second, 40, "a"), // window 1: avg 40
	}
	got := runOp(t, op, feed(weatherSchema(), tuples, false))
	if len(got) != 3 {
		t.Fatalf("got %d aggregates, want 3: %v", len(got), got)
	}
	// Deterministic order: window 0 groups sorted (a, b), then window 1.
	if got[0].MustGet("station").AsString() != "a" || got[0].MustGet("avg_temperature").AsFloat() != 25 {
		t.Errorf("w0 a = %v", got[0])
	}
	if got[1].MustGet("station").AsString() != "b" || got[1].MustGet("avg_temperature").AsFloat() != 10 {
		t.Errorf("w0 b = %v", got[1])
	}
	if got[2].MustGet("station").AsString() != "a" || got[2].MustGet("avg_temperature").AsFloat() != 40 {
		t.Errorf("w1 a = %v", got[2])
	}
	// Window timestamps are the window starts.
	if !got[0].Time.Equal(t0) || !got[2].Time.Equal(t0.Add(time.Minute)) {
		t.Errorf("window times: %v, %v", got[0].Time, got[2].Time)
	}
}

func TestAggregateCount(t *testing.T) {
	op, err := NewAggregate("cnt", time.Minute, nil, AggCount, "", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	if op.OutSchema().NumFields() != 1 || op.OutSchema().IndexOf("count") != 0 {
		t.Fatalf("schema = %s", op.OutSchema())
	}
	tuples := []*stt.Tuple{
		wtuple(0, 1, "a"), wtuple(time.Second, 2, "b"), wtuple(2*time.Second, 3, "c"),
		wtuple(90*time.Second, 4, "d"),
	}
	got := runOp(t, op, feed(weatherSchema(), tuples, false))
	if len(got) != 2 {
		t.Fatalf("windows = %d", len(got))
	}
	if got[0].MustGet("count").AsInt() != 3 || got[1].MustGet("count").AsInt() != 1 {
		t.Errorf("counts = %v, %v", got[0].Values, got[1].Values)
	}
}

func TestAggregateCountAttrSkipsNulls(t *testing.T) {
	op, err := NewAggregate("cnt", time.Minute, nil, AggCount, "temperature", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	if op.OutSchema().IndexOf("count_temperature") != 0 {
		t.Fatalf("schema = %s", op.OutSchema())
	}
	withNull := wtuple(time.Second, 0, "n")
	withNull.Values[0] = stt.Null()
	got := runOp(t, op, feed(weatherSchema(), []*stt.Tuple{
		wtuple(0, 1, "a"), withNull, wtuple(2*time.Second, 3, "c"),
	}, false))
	if len(got) != 1 || got[0].MustGet("count_temperature").AsInt() != 2 {
		t.Errorf("count_temperature = %v", got)
	}
}

func TestAggregateSumMinMax(t *testing.T) {
	mk := func(fn AggFunc) []*stt.Tuple {
		op, err := NewAggregate("x", time.Minute, nil, fn, "temperature", weatherSchema())
		if err != nil {
			t.Fatal(err)
		}
		return runOp(t, op, feed(weatherSchema(), []*stt.Tuple{
			wtuple(0, 5, "a"), wtuple(time.Second, -3, "b"), wtuple(2*time.Second, 10, "c"),
		}, false))
	}
	if got := mk(AggSum); got[0].Values[0].AsFloat() != 12 {
		t.Errorf("sum = %v", got[0].Values[0])
	}
	if got := mk(AggMin); got[0].Values[0].AsFloat() != -3 {
		t.Errorf("min = %v", got[0].Values[0])
	}
	if got := mk(AggMax); got[0].Values[0].AsFloat() != 10 {
		t.Errorf("max = %v", got[0].Values[0])
	}
}

func TestAggregateCentroid(t *testing.T) {
	op, err := NewAggregate("avg", time.Minute, nil, AggAvg, "temperature", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	a := wtuple(0, 10, "a")
	a.Lat, a.Lon = 34.0, 135.0
	b := wtuple(time.Second, 20, "b")
	b.Lat, b.Lon = 35.0, 136.0
	got := runOp(t, op, feed(weatherSchema(), []*stt.Tuple{a, b}, false))
	if len(got) != 1 {
		t.Fatal("one window")
	}
	// Centroid (34.5, 135.5) snapped to district granularity.
	if math.Abs(got[0].Lat-34.5) > 0.01 || math.Abs(got[0].Lon-135.5) > 0.01 {
		t.Errorf("centroid = %v,%v", got[0].Lat, got[0].Lon)
	}
}

func TestAggregateFlushOnWatermarkOnly(t *testing.T) {
	op, err := NewAggregate("avg", time.Minute, nil, AggAvg, "temperature", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	in := feed(weatherSchema(), []*stt.Tuple{
		wtuple(0, 10, "a"),
		wtuple(30*time.Second, 20, "a"), // same window; watermark at 30s < window end
	}, true) // per-tuple watermarks
	got := runOp(t, op, in)
	// The window [t0, t0+60) only flushes at EOS because watermarks stop at 30s.
	if len(got) != 1 || got[0].Values[0].AsFloat() != 15 {
		t.Errorf("got %v", got)
	}
}

func TestAggregateValidation(t *testing.T) {
	w := weatherSchema()
	if _, err := NewAggregate("x", 0, nil, AggCount, "", w); err == nil {
		t.Error("zero interval must fail")
	}
	if _, err := NewAggregate("x", time.Second, nil, "MEDIAN", "", w); err == nil {
		t.Error("unknown function must fail")
	}
	if _, err := NewAggregate("x", time.Second, []string{"ghost"}, AggCount, "", w); err == nil {
		t.Error("unknown group-by must fail")
	}
	if _, err := NewAggregate("x", time.Second, nil, AggAvg, "", w); err == nil {
		t.Error("AVG without attribute must fail")
	}
	if _, err := NewAggregate("x", time.Second, nil, AggAvg, "ghost", w); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := NewAggregate("x", time.Second, nil, AggAvg, "station", w); err == nil {
		t.Error("AVG over a string must fail")
	}
	if _, err := NewAggregate("x", time.Second, nil, AggCount, "ghost", w); err == nil {
		t.Error("COUNT of unknown attribute must fail")
	}
}

// Property: windowed SUM equals the sum of all inputs regardless of how
// tuples spread over windows, and COUNT sums to the tuple count.
func TestQuickAggregateConservation(t *testing.T) {
	f := func(offsets []uint16, temps []int8) bool {
		n := len(offsets)
		if len(temps) < n {
			n = len(temps)
		}
		if n == 0 {
			return true
		}
		var tuples []*stt.Tuple
		var wantSum float64
		for i := 0; i < n; i++ {
			tup := wtuple(time.Duration(offsets[i])*time.Second, float64(temps[i]), "s")
			tuples = append(tuples, tup)
			wantSum += float64(temps[i])
		}
		op, err := NewAggregate("sum", time.Minute, nil, AggSum, "temperature", weatherSchema())
		if err != nil {
			return false
		}
		in := feed(weatherSchema(), tuples, false)
		out := stream.New("o", op.OutSchema(), 8192)
		errc := make(chan error, 1)
		go func() { errc <- op.Run([]*stream.Stream{in}, out) }()
		got := stream.Collect(out)
		if <-errc != nil {
			return false
		}
		var gotSum float64
		for _, tup := range got {
			gotSum += tup.Values[len(tup.Values)-1].AsFloat()
		}
		return math.Abs(gotSum-wantSum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
