package ops

import (
	"testing"
	"time"

	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// base time for all operator tests.
var t0 = time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)

func weatherSchema() *stt.Schema {
	return stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
		stt.NewField("station", stt.KindString, ""),
	}, stt.GranSecond, stt.SpatCellDistrict, "weather")
}

// wtuple builds a weather tuple at t0+offset with the given temperature.
func wtuple(offset time.Duration, temp float64, station string) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: weatherSchema(),
		Values: []stt.Value{stt.Float(temp), stt.String(station)},
		Time:   t0.Add(offset),
		Lat:    34.69, Lon: 135.50,
		Theme:  "weather",
		Source: station,
	}
	return tup.AlignSTT()
}

// feed pushes tuples followed by a final watermark and EOS into a fresh
// stream, returning it. A watermark is inserted after every tuple when
// perTupleWM is set (sources do this in live mode).
func feed(schema *stt.Schema, tuples []*stt.Tuple, perTupleWM bool) *stream.Stream {
	in := stream.New("test-in", schema, len(tuples)*2+4)
	go func() {
		var last time.Time
		for _, t := range tuples {
			in.Send(t)
			if perTupleWM {
				in.SendWatermark(t.Time)
			}
			if t.Time.After(last) {
				last = t.Time
			}
		}
		if !perTupleWM && !last.IsZero() {
			in.SendWatermark(last)
		}
		in.Close()
	}()
	return in
}

// runOp executes the operator over the input streams and collects its
// output tuples, failing the test on operator error.
func runOp(t *testing.T, op Operator, in ...*stream.Stream) []*stt.Tuple {
	t.Helper()
	out := stream.New("test-out", op.OutSchema(), 4096)
	errc := make(chan error, 1)
	go func() { errc <- op.Run(in, out) }()
	tuples := stream.Collect(out)
	if err := <-errc; err != nil {
		t.Fatalf("%s failed: %v", op.Name(), err)
	}
	return tuples
}

func TestKindBlocking(t *testing.T) {
	blocking := []Kind{KindAggregate, KindJoin, KindTriggerOn, KindTriggerOff}
	nonBlocking := []Kind{KindFilter, KindTransform, KindVirtual, KindCullTime, KindCullSpace}
	for _, k := range blocking {
		if !k.Blocking() {
			t.Errorf("%s must be blocking", k)
		}
	}
	for _, k := range nonBlocking {
		if k.Blocking() {
			t.Errorf("%s must be non-blocking", k)
		}
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range []Kind{KindFilter, KindSource, KindSink, KindJoin} {
		if !k.Valid() {
			t.Errorf("%s must be valid", k)
		}
	}
	if Kind("teleport").Valid() {
		t.Error("unknown kind must be invalid")
	}
}

func TestWindowIndex(t *testing.T) {
	sec := time.Second
	if windowIndex(time.Unix(0, 0), sec) != 0 {
		t.Error("epoch window")
	}
	if windowIndex(time.Unix(1, 500e6), sec) != 1 {
		t.Error("1.5s window")
	}
	if windowIndex(time.Unix(-1, 500e6), sec) != -1 {
		t.Error("-0.5s window must floor to -1")
	}
	if windowIndex(time.Unix(-2, 0), sec) != -2 {
		t.Error("-2s window boundary")
	}
	// windowStart inverts windowIndex on boundaries.
	for _, i := range []int64{-3, -1, 0, 1, 42} {
		if got := windowIndex(windowStart(i, sec), sec); got != i {
			t.Errorf("windowIndex(windowStart(%d)) = %d", i, got)
		}
	}
}

func TestWatermarkMerger(t *testing.T) {
	m := newWatermarkMerger(2)
	if _, ok := m.combined(); ok {
		t.Error("undefined before any report")
	}
	if _, ok := m.update(0, t0); ok {
		t.Error("undefined until all inputs report")
	}
	wm, ok := m.update(1, t0.Add(time.Second))
	if !ok || !wm.Equal(t0) {
		t.Errorf("combined = %v, %v; want t0", wm, ok)
	}
	// Watermarks never regress.
	wm, ok = m.update(0, t0.Add(-time.Hour))
	if !ok || !wm.Equal(t0) {
		t.Errorf("regressed watermark changed combined: %v", wm)
	}
	// Ending an input removes it from the minimum.
	wm, ok = m.end(0)
	if !ok || !wm.Equal(t0.Add(time.Second)) {
		t.Errorf("after end combined = %v", wm)
	}
	if m.allEnded() {
		t.Error("one input still open")
	}
	wm, ok = m.end(1)
	if !ok || !m.allEnded() {
		t.Error("all ended")
	}
	if wm.Before(t0.AddDate(50, 0, 0)) {
		t.Errorf("all-ended watermark must be far in the future, got %v", wm)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.In.Add(3)
	c.Out.Add(2)
	c.Dropped.Add(1)
	in, out, dropped := c.Snapshot()
	if in != 3 || out != 2 || dropped != 1 {
		t.Errorf("snapshot = %d %d %d", in, out, dropped)
	}
}

func TestRunMapArity(t *testing.T) {
	f, err := NewFilter("f", "temperature > 0", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	out := stream.New("o", f.OutSchema(), 4)
	if err := f.Run(nil, out); err == nil {
		t.Error("0 inputs must fail")
	}
}
