package ops

import (
	"testing"
	"testing/quick"
	"time"

	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

func trafficSchema() *stt.Schema {
	return stt.MustSchema([]stt.Field{
		stt.NewField("congestion", stt.KindFloat, "fraction"),
		stt.NewField("station", stt.KindString, ""),
	}, stt.GranMinute, stt.SpatCellCity, "traffic")
}

func ttuple(offset time.Duration, congestion float64, station string) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: trafficSchema(),
		Values: []stt.Value{stt.Float(congestion), stt.String(station)},
		Time:   t0.Add(offset),
		Lat:    34.71, Lon: 135.52,
		Theme:  "traffic",
		Source: "traffic-" + station,
	}
	return tup.AlignSTT()
}

func TestJoinSchema(t *testing.T) {
	j, err := NewJoin("j", time.Minute, "left.station == right.station",
		weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	out := j.OutSchema()
	// left(temperature, station) + right(congestion, right_station).
	if out.NumFields() != 4 {
		t.Fatalf("schema = %s", out)
	}
	if out.IndexOf("temperature") != 0 || out.IndexOf("station") != 1 ||
		out.IndexOf("congestion") != 2 || out.IndexOf("right_station") != 3 {
		t.Fatalf("field layout: %s", out)
	}
	// STT composition: coarsest granularities, merged themes.
	if out.TGran != stt.GranMinute || out.SGran != stt.SpatCellCity {
		t.Errorf("granularities: %s/%s", out.TGran, out.SGran)
	}
	if !out.HasTheme("weather") || !out.HasTheme("traffic") {
		t.Errorf("themes: %v", out.Themes)
	}
}

func TestJoinMatches(t *testing.T) {
	j, err := NewJoin("j", time.Minute, "left.station == right.station",
		weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	left := feed(weatherSchema(), []*stt.Tuple{
		wtuple(0, 30, "umeda"), wtuple(time.Second, 22, "namba"),
	}, false)
	right := feed(trafficSchema(), []*stt.Tuple{
		ttuple(2*time.Second, 0.9, "umeda"), ttuple(3*time.Second, 0.2, "sakai"),
	}, false)
	got := runOp(t, j, left, right)
	if len(got) != 1 {
		t.Fatalf("joined %d pairs, want 1: %v", len(got), got)
	}
	r := got[0]
	if r.MustGet("station").AsString() != "umeda" || r.MustGet("right_station").AsString() != "umeda" {
		t.Errorf("join keys: %v", r)
	}
	if r.MustGet("temperature").AsFloat() != 30 || r.MustGet("congestion").AsFloat() != 0.9 {
		t.Errorf("payload: %v", r)
	}
	if r.Source != "umeda+traffic-umeda" {
		t.Errorf("source = %q", r.Source)
	}
	if r.Theme != "weather" {
		t.Errorf("theme = %q", r.Theme)
	}
}

func TestJoinWindowsSeparate(t *testing.T) {
	// Tuples in different windows must not join even if the predicate holds.
	j, err := NewJoin("j", time.Minute, "left.station == right.station",
		weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	left := feed(weatherSchema(), []*stt.Tuple{wtuple(0, 30, "umeda")}, false)
	right := feed(trafficSchema(), []*stt.Tuple{ttuple(90*time.Second, 0.9, "umeda")}, false)
	got := runOp(t, j, left, right)
	if len(got) != 0 {
		t.Errorf("cross-window join produced %d tuples", len(got))
	}
}

func TestJoinCrossProductWithTruePredicate(t *testing.T) {
	j, err := NewJoin("j", time.Minute, "true", weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	var ls, rs []*stt.Tuple
	for i := 0; i < 3; i++ {
		ls = append(ls, wtuple(time.Duration(i)*time.Second, 20, "a"))
		rs = append(rs, ttuple(time.Duration(i)*time.Second, 0.5, "b"))
	}
	got := runOp(t, j, feed(weatherSchema(), ls, false), feed(trafficSchema(), rs, false))
	if len(got) != 9 {
		t.Errorf("cross product = %d, want 9", len(got))
	}
}

func TestJoinTimeAndPosition(t *testing.T) {
	j, err := NewJoin("j", time.Minute, "true", weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	l := wtuple(10*time.Second, 20, "a")
	l.Lat, l.Lon = 34.0, 135.0
	r := ttuple(30*time.Second, 0.5, "b")
	r.Lat, r.Lon = 35.0, 136.0
	got := runOp(t, j, feed(weatherSchema(), []*stt.Tuple{l}, false),
		feed(trafficSchema(), []*stt.Tuple{r}, false))
	if len(got) != 1 {
		t.Fatal("want one result")
	}
	// Later event time, re-truncated to the coarser (minute) granularity.
	if !got[0].Time.Equal(t0) {
		t.Errorf("time = %v, want %v", got[0].Time, t0)
	}
	// Midpoint snapped to the coarser (city) granularity.
	if got[0].Lat != 34.5 || got[0].Lon != 135.5 {
		t.Errorf("position = %v,%v", got[0].Lat, got[0].Lon)
	}
}

func TestJoinWatermarkDriven(t *testing.T) {
	// With per-tuple watermarks the join flushes incrementally: results for
	// window 0 must be emitted before the inputs finish window 1.
	j, err := NewJoin("j", time.Minute, "left.station == right.station",
		weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	left := stream.New("l", weatherSchema(), 16)
	right := stream.New("r", trafficSchema(), 16)
	out := stream.New("o", j.OutSchema(), 16)
	go j.Run([]*stream.Stream{left, right}, out)

	left.Send(wtuple(0, 30, "umeda"))
	right.Send(ttuple(time.Second, 0.9, "umeda"))
	// Advance both watermarks past window 0.
	left.SendWatermark(t0.Add(61 * time.Second))
	right.SendWatermark(t0.Add(61 * time.Second))

	select {
	case item := <-out.C:
		if item.Kind != stream.ItemTuple {
			t.Fatalf("first item = %v, want tuple", item.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join did not flush on watermark")
	}
	left.Close()
	right.Close()
	out.Drain()
}

func TestJoinLateTupleDropped(t *testing.T) {
	j, err := NewJoin("j", time.Minute, "true", weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	left := stream.New("l", weatherSchema(), 16)
	right := stream.New("r", trafficSchema(), 16)
	out := stream.New("o", j.OutSchema(), 64)
	done := make(chan error, 1)
	go func() { done <- j.Run([]*stream.Stream{left, right}, out) }()

	// Flush window 0 on both sides.
	left.SendWatermark(t0.Add(2 * time.Minute))
	right.SendWatermark(t0.Add(2 * time.Minute))
	// Wait for the forwarded watermark so the flush has happened.
	for item := range out.C {
		if item.Kind == stream.ItemWatermark {
			break
		}
	}
	// A tuple arriving for the already-flushed window 0 must be dropped.
	left.Send(wtuple(0, 30, "late"))
	left.Close()
	right.Close()
	out.Drain()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, _, dropped := j.Counters().Snapshot(); dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestJoinValidation(t *testing.T) {
	w, tr := weatherSchema(), trafficSchema()
	if _, err := NewJoin("j", 0, "true", w, tr); err == nil {
		t.Error("zero interval must fail")
	}
	if _, err := NewJoin("j", time.Second, "left.ghost == right.station", w, tr); err == nil {
		t.Error("unknown predicate field must fail")
	}
	if _, err := NewJoin("j", time.Second, "left.temperature + right.congestion", w, tr); err == nil {
		t.Error("non-bool predicate must fail")
	}
	if _, err := NewJoin("j", time.Second, "station == 1", w, tr); err == nil {
		t.Error("unqualified field must fail")
	}
}

func TestJoinArity(t *testing.T) {
	j, err := NewJoin("j", time.Minute, "true", weatherSchema(), trafficSchema())
	if err != nil {
		t.Fatal(err)
	}
	out := stream.New("o", j.OutSchema(), 4)
	if err := j.Run([]*stream.Stream{feed(weatherSchema(), nil, false)}, out); err == nil {
		t.Error("join with one input must fail")
	}
}

// Property: windowed join result size equals the window-partitioned
// nested-loop reference for equality predicates.
func TestQuickJoinEqualsNestedLoop(t *testing.T) {
	stations := []string{"a", "b", "c"}
	f := func(lOff, rOff []uint8, lSt, rSt []uint8) bool {
		nl, nr := len(lOff), len(rOff)
		if len(lSt) < nl {
			nl = len(lSt)
		}
		if len(rSt) < nr {
			nr = len(rSt)
		}
		if nl > 20 {
			nl = 20
		}
		if nr > 20 {
			nr = 20
		}
		var ls, rs []*stt.Tuple
		for i := 0; i < nl; i++ {
			ls = append(ls, wtuple(time.Duration(lOff[i])*time.Second, 20, stations[int(lSt[i])%3]))
		}
		for i := 0; i < nr; i++ {
			rs = append(rs, ttuple(time.Duration(rOff[i])*time.Second, 0.5, stations[int(rSt[i])%3]))
		}
		// Reference: nested loop within minute windows.
		want := 0
		for _, l := range ls {
			for _, r := range rs {
				if l.MustGet("station").AsString() == r.MustGet("station").AsString() &&
					windowIndex(l.Time, time.Minute) == windowIndex(r.Time, time.Minute) {
					want++
				}
			}
		}
		j, err := NewJoin("j", time.Minute, "left.station == right.station",
			weatherSchema(), trafficSchema())
		if err != nil {
			return false
		}
		out := stream.New("o", j.OutSchema(), 8192)
		errc := make(chan error, 1)
		go func() {
			errc <- j.Run([]*stream.Stream{
				feed(weatherSchema(), ls, false),
				feed(trafficSchema(), rs, false),
			}, out)
		}()
		got := stream.Collect(out)
		if <-errc != nil {
			return false
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
