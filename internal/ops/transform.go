package ops

import (
	"fmt"

	"streamloader/internal/expr"
	"streamloader/internal/geo"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// TransformStep is one step of a Transform operation (◇trans). The paper's
// Transform requirements are: changing the unit of measure, changing
// geographical coordinates between standards, and checking that data conform
// to validation rules; rename/project/coarsen are the supporting
// reconciliation steps heterogeneous schemas additionally need.
type TransformStep struct {
	// Op selects the step: "convert_unit", "convert_coord", "rename",
	// "project", "validate", "coarsen".
	Op string `json:"op"`

	// Field names the attribute for convert_unit and rename.
	Field string `json:"field,omitempty"`
	// ToUnit is the target unit for convert_unit (source unit comes from
	// the schema).
	ToUnit string `json:"to_unit,omitempty"`
	// NewName is the new attribute name for rename.
	NewName string `json:"new_name,omitempty"`
	// Fields lists the attributes kept by project, in order.
	Fields []string `json:"fields,omitempty"`
	// FromSystem/ToSystem are coordinate systems for convert_coord.
	FromSystem string `json:"from_system,omitempty"`
	ToSystem   string `json:"to_system,omitempty"`
	// Rule is the validation condition for validate; tuples that do not
	// satisfy it are dropped (and counted).
	Rule string `json:"rule,omitempty"`
	// TGran/SGran are the target granularities for coarsen.
	TGran string `json:"tgran,omitempty"`
	SGran string `json:"sgran,omitempty"`
}

// stepFunc transforms one tuple; returning nil drops it.
type stepFunc func(*stt.Tuple) (*stt.Tuple, error)

// Transform implements ◇trans s: the transformation function trans — a
// pipeline of reconciliation steps — applied to every tuple of s.
type Transform struct {
	base
	steps []stepFunc
}

// NewTransform compiles the steps against the input schema, propagating the
// schema through each step.
func NewTransform(name string, steps []TransformStep, in *stt.Schema) (*Transform, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("transform %s: needs at least one step", name)
	}
	t := &Transform{base: base{name: name, kind: KindTransform}}
	schema := in
	for i, s := range steps {
		fn, next, err := compileStep(s, schema)
		if err != nil {
			return nil, fmt.Errorf("transform %s step %d (%s): %w", name, i+1, s.Op, err)
		}
		t.steps = append(t.steps, fn)
		schema = next
	}
	t.out = schema
	return t, nil
}

func compileStep(s TransformStep, in *stt.Schema) (stepFunc, *stt.Schema, error) {
	switch s.Op {
	case "convert_unit":
		return compileConvertUnit(s, in)
	case "convert_coord":
		return compileConvertCoord(s, in)
	case "rename":
		return compileRename(s, in)
	case "project":
		return compileProject(s, in)
	case "validate":
		return compileValidate(s, in)
	case "coarsen":
		return compileCoarsen(s, in)
	default:
		return nil, nil, fmt.Errorf("unknown transform op %q", s.Op)
	}
}

func compileConvertUnit(s TransformStep, in *stt.Schema) (stepFunc, *stt.Schema, error) {
	idx := in.IndexOf(s.Field)
	if idx < 0 {
		return nil, nil, fmt.Errorf("unknown field %q", s.Field)
	}
	f := in.Field(idx)
	if !f.Kind.Numeric() {
		return nil, nil, fmt.Errorf("field %q is %s, unit conversion needs a numeric field", s.Field, f.Kind)
	}
	if f.Unit == "" {
		return nil, nil, fmt.Errorf("field %q carries no source unit", s.Field)
	}
	// Validate the conversion once at plan time.
	if _, err := geo.ConvertUnit(0, f.Unit, s.ToUnit); err != nil {
		return nil, nil, err
	}
	fields := in.Fields()
	fields[idx] = stt.NewField(f.Name, stt.KindFloat, s.ToUnit)
	out, err := stt.NewSchema(fields, in.TGran, in.SGran, in.Themes...)
	if err != nil {
		return nil, nil, err
	}
	from, to := f.Unit, s.ToUnit
	fn := func(t *stt.Tuple) (*stt.Tuple, error) {
		c := t.Clone()
		c.Schema = out
		v := c.Values[idx]
		if !v.IsNull() {
			converted, err := geo.ConvertUnit(v.AsFloat(), from, to)
			if err != nil {
				return nil, err
			}
			c.Values[idx] = stt.Float(converted)
		}
		return c, nil
	}
	return fn, out, nil
}

func compileConvertCoord(s TransformStep, in *stt.Schema) (stepFunc, *stt.Schema, error) {
	from, err := geo.ParseCoordSystem(s.FromSystem)
	if err != nil {
		return nil, nil, err
	}
	to, err := geo.ParseCoordSystem(s.ToSystem)
	if err != nil {
		return nil, nil, err
	}
	if _, err := geo.ConvertCoord(geo.Point{}, from, to); err != nil {
		return nil, nil, err
	}
	fn := func(t *stt.Tuple) (*stt.Tuple, error) {
		c := t.Clone()
		p, err := geo.ConvertCoord(geo.Point{Lat: c.Lat, Lon: c.Lon}, from, to)
		if err != nil {
			return nil, err
		}
		c.Lat, c.Lon = p.Lat, p.Lon
		c.AlignSTT()
		return c, nil
	}
	return fn, in, nil
}

func compileRename(s TransformStep, in *stt.Schema) (stepFunc, *stt.Schema, error) {
	idx := in.IndexOf(s.Field)
	if idx < 0 {
		return nil, nil, fmt.Errorf("unknown field %q", s.Field)
	}
	if s.NewName == "" {
		return nil, nil, fmt.Errorf("rename of %q needs new_name", s.Field)
	}
	fields := in.Fields()
	fields[idx] = stt.NewField(s.NewName, fields[idx].Kind, fields[idx].Unit)
	out, err := stt.NewSchema(fields, in.TGran, in.SGran, in.Themes...)
	if err != nil {
		return nil, nil, err
	}
	fn := func(t *stt.Tuple) (*stt.Tuple, error) {
		c := t.Clone()
		c.Schema = out
		return c, nil
	}
	return fn, out, nil
}

func compileProject(s TransformStep, in *stt.Schema) (stepFunc, *stt.Schema, error) {
	if len(s.Fields) == 0 {
		return nil, nil, fmt.Errorf("project needs fields")
	}
	out, mapping, err := in.Project(s.Fields)
	if err != nil {
		return nil, nil, err
	}
	fn := func(t *stt.Tuple) (*stt.Tuple, error) {
		vals := make([]stt.Value, len(mapping))
		for i, src := range mapping {
			vals[i] = t.Values[src]
		}
		c := *t
		c.Schema = out
		c.Values = vals
		return &c, nil
	}
	return fn, out, nil
}

func compileValidate(s TransformStep, in *stt.Schema) (stepFunc, *stt.Schema, error) {
	rule, err := expr.CompileBool(s.Rule, expr.Env{Schema: in})
	if err != nil {
		return nil, nil, err
	}
	fn := func(t *stt.Tuple) (*stt.Tuple, error) {
		ok, err := rule.EvalBool(expr.Scope{Tuple: t})
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil // non-conforming tuples are dropped
		}
		return t, nil
	}
	return fn, in, nil
}

func compileCoarsen(s TransformStep, in *stt.Schema) (stepFunc, *stt.Schema, error) {
	tg := in.TGran
	sg := in.SGran
	if s.TGran != "" {
		parsed, err := stt.ParseTemporalGranularity(s.TGran)
		if err != nil {
			return nil, nil, err
		}
		tg = parsed
	}
	if s.SGran != "" {
		parsed, err := stt.ParseSpatialGranularity(s.SGran)
		if err != nil {
			return nil, nil, err
		}
		sg = parsed
	}
	if tg.FinerThan(in.TGran) {
		return nil, nil, fmt.Errorf("cannot refine temporal granularity %s to %s", in.TGran, tg)
	}
	if in.SGran.CoarserThan(sg) {
		return nil, nil, fmt.Errorf("cannot refine spatial granularity %s to %s", in.SGran, sg)
	}
	out := in.WithGranularities(tg, sg)
	fn := func(t *stt.Tuple) (*stt.Tuple, error) {
		return t.Coarsen(out)
	}
	return fn, out, nil
}

// Run applies the step pipeline to every tuple.
func (o *Transform) Run(in []*stream.Stream, out *stream.Stream) error {
	return o.runMap(in, out, func(t *stt.Tuple) (*stt.Tuple, error) {
		cur := t
		for _, step := range o.steps {
			next, err := step(cur)
			if err != nil {
				return nil, err
			}
			if next == nil {
				return nil, nil
			}
			cur = next
		}
		return cur, nil
	})
}
