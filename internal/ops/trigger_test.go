package ops

import (
	"sync"
	"testing"
	"time"

	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// fakeActivator records activation calls, standing in for the pub/sub broker.
type fakeActivator struct {
	mu          sync.Mutex
	activated   []string
	deactivated []string
	failOn      string
}

func (f *fakeActivator) Activate(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == f.failOn {
		return errFail
	}
	f.activated = append(f.activated, id)
	return nil
}

func (f *fakeActivator) Deactivate(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == f.failOn {
		return errFail
	}
	f.deactivated = append(f.deactivated, id)
	return nil
}

var errFail = &activatorError{}

type activatorError struct{}

func (*activatorError) Error() string { return "activator failure injected" }

func TestTriggerOnFires(t *testing.T) {
	act := &fakeActivator{}
	var fires []FireEvent
	var mu sync.Mutex
	tr, err := NewTriggerOn("hot", time.Minute, "temperature > 25",
		[]string{"rain-1", "tweet-1"}, TriggerAny, act,
		func(ev FireEvent) { mu.Lock(); fires = append(fires, ev); mu.Unlock() },
		weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind() != KindTriggerOn {
		t.Error("kind")
	}
	// Window 0: cold; window 1: one hot tuple -> fires.
	tuples := []*stt.Tuple{
		wtuple(0, 20, "a"), wtuple(10*time.Second, 22, "a"),
		wtuple(65*time.Second, 27, "a"), wtuple(70*time.Second, 21, "a"),
	}
	got := runOp(t, tr, feed(weatherSchema(), tuples, false))
	// Pass-through: all 4 tuples flow on.
	if len(got) != 4 {
		t.Fatalf("pass-through broke: %d tuples", len(got))
	}
	if len(act.activated) != 2 {
		t.Fatalf("activated = %v, want both targets once", act.activated)
	}
	if act.activated[0] != "rain-1" || act.activated[1] != "tweet-1" {
		t.Errorf("activation order: %v", act.activated)
	}
	if len(act.deactivated) != 0 {
		t.Error("trigger ON must not deactivate")
	}
	// Fire log: window 0 no-fire, window 1 fire.
	if len(fires) != 2 {
		t.Fatalf("fire events = %d, want 2", len(fires))
	}
	if fires[0].Fired || !fires[1].Fired {
		t.Errorf("fire pattern: %+v", fires)
	}
	if !fires[1].WindowStart.Equal(t0.Add(time.Minute)) {
		t.Errorf("fired window = %v", fires[1].WindowStart)
	}
}

func TestTriggerOffFires(t *testing.T) {
	act := &fakeActivator{}
	tr, err := NewTriggerOff("cold", time.Minute, "temperature < 10",
		[]string{"rain-1"}, TriggerAny, act, nil, weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind() != KindTriggerOff {
		t.Error("kind")
	}
	runOp(t, tr, feed(weatherSchema(), []*stt.Tuple{wtuple(0, 5, "a")}, false))
	if len(act.deactivated) != 1 || act.deactivated[0] != "rain-1" {
		t.Errorf("deactivated = %v", act.deactivated)
	}
	if len(act.activated) != 0 {
		t.Error("trigger OFF must not activate")
	}
}

func TestTriggerModeAll(t *testing.T) {
	act := &fakeActivator{}
	tr, err := NewTriggerOn("allhot", time.Minute, "temperature > 25",
		[]string{"x"}, TriggerAll, act, nil, weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: mixed -> no fire. Window 1: all hot -> fire.
	runOp(t, tr, feed(weatherSchema(), []*stt.Tuple{
		wtuple(0, 30, "a"), wtuple(time.Second, 20, "a"),
		wtuple(61*time.Second, 30, "a"), wtuple(62*time.Second, 28, "a"),
	}, false))
	if len(act.activated) != 1 {
		t.Errorf("activated %d times, want 1", len(act.activated))
	}
}

func TestTriggerEmptyWindowNeverFires(t *testing.T) {
	act := &fakeActivator{}
	tr, err := NewTriggerOn("x", time.Minute, "true", []string{"t"},
		TriggerAll, act, nil, weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	// No tuples at all: EOS flush must not fire ALL-mode on empty windows.
	runOp(t, tr, feed(weatherSchema(), nil, false))
	if len(act.activated) != 0 {
		t.Error("empty stream must not fire")
	}
}

func TestTriggerScenarioOsaka(t *testing.T) {
	// The paper's scenario: activate rain/tweets/traffic when the last-hour
	// temperature exceeds 25 C.
	act := &fakeActivator{}
	tr, err := NewTriggerOn("osaka", time.Hour, "temperature > 25",
		[]string{"rain-1", "tweet-1", "traffic-1"}, TriggerAny, act, nil, weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	var tuples []*stt.Tuple
	// Hour 0: all below 25. Hour 1: one reading of 26.
	for i := 0; i < 60; i++ {
		tuples = append(tuples, wtuple(time.Duration(i)*time.Minute, 20, "a"))
	}
	tuples = append(tuples, wtuple(90*time.Minute, 26, "a"))
	runOp(t, tr, feed(weatherSchema(), tuples, false))
	if len(act.activated) != 3 {
		t.Fatalf("activated = %v", act.activated)
	}
}

func TestTriggerActivatorFailureStopsRun(t *testing.T) {
	act := &fakeActivator{failOn: "broken"}
	tr, err := NewTriggerOn("x", time.Minute, "true", []string{"broken"},
		TriggerAny, act, nil, weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	in := feed(weatherSchema(), []*stt.Tuple{wtuple(0, 30, "a")}, false)
	out := stream.New("o", tr.OutSchema(), 64)
	errc := make(chan error, 1)
	go func() { errc <- tr.Run([]*stream.Stream{in}, out) }()
	out.Drain()
	if err := <-errc; err == nil {
		t.Error("activator failure must surface as run error")
	}
}

func TestTriggerValidation(t *testing.T) {
	act := &fakeActivator{}
	w := weatherSchema()
	if _, err := NewTriggerOn("x", 0, "true", []string{"t"}, TriggerAny, act, nil, w); err == nil {
		t.Error("zero interval must fail")
	}
	if _, err := NewTriggerOn("x", time.Second, "true", nil, TriggerAny, act, nil, w); err == nil {
		t.Error("no targets must fail")
	}
	if _, err := NewTriggerOn("x", time.Second, "true", []string{"t"}, TriggerAny, nil, nil, w); err == nil {
		t.Error("nil activator must fail")
	}
	if _, err := NewTriggerOn("x", time.Second, "ghost > 1", []string{"t"}, TriggerAny, act, nil, w); err == nil {
		t.Error("bad condition must fail")
	}
	if _, err := NewTriggerOn("x", time.Second, "true", []string{"t"}, "most", act, nil, w); err == nil {
		t.Error("unknown mode must fail")
	}
	// Empty mode defaults to any.
	tr, err := NewTriggerOn("x", time.Second, "true", []string{"t"}, "", act, nil, w)
	if err != nil || tr.mode != TriggerAny {
		t.Error("empty mode must default to any")
	}
}
