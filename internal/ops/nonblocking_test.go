package ops

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

func TestFilter(t *testing.T) {
	op, err := NewFilter("hot", "temperature > 25", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind() != KindFilter || op.Name() != "hot" {
		t.Error("identity")
	}
	if op.OutSchema() != weatherSchema() && !op.OutSchema().Compatible(weatherSchema()) {
		t.Error("filter must preserve the schema")
	}
	in := feed(weatherSchema(), []*stt.Tuple{
		wtuple(0, 20, "a"), wtuple(time.Second, 26, "b"),
		wtuple(2*time.Second, 25, "c"), wtuple(3*time.Second, 30, "d"),
	}, false)
	got := runOp(t, op, in)
	if len(got) != 2 {
		t.Fatalf("filtered %d tuples, want 2", len(got))
	}
	if got[0].MustGet("station").AsString() != "b" || got[1].MustGet("station").AsString() != "d" {
		t.Errorf("wrong survivors: %v", got)
	}
	in2, out2, dropped := op.Counters().Snapshot()
	if in2 != 4 || out2 != 2 || dropped != 2 {
		t.Errorf("counters = %d %d %d", in2, out2, dropped)
	}
}

func TestFilterCompileError(t *testing.T) {
	if _, err := NewFilter("bad", "ghost > 1", weatherSchema()); err == nil {
		t.Error("unknown field must fail at construction")
	}
	if _, err := NewFilter("bad", "temperature + 1", weatherSchema()); err == nil {
		t.Error("non-bool condition must fail at construction")
	}
}

func TestFilterPreservesWatermarks(t *testing.T) {
	op, err := NewFilter("all", "temperature > 1000", weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	in := feed(weatherSchema(), []*stt.Tuple{wtuple(0, 20, "a")}, true)
	out := stream.New("o", op.OutSchema(), 64)
	go op.Run([]*stream.Stream{in}, out)
	items := stream.CollectItems(out)
	// All tuples dropped, but the watermark and EOS must still flow.
	var wm, eos int
	for _, it := range items {
		switch it.Kind {
		case stream.ItemWatermark:
			wm++
		case stream.ItemEOS:
			eos++
		case stream.ItemTuple:
			t.Error("no tuple should survive")
		}
	}
	if wm != 1 || eos != 1 {
		t.Errorf("wm=%d eos=%d", wm, eos)
	}
}

func TestVirtualProperty(t *testing.T) {
	schema := stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
		stt.NewField("humidity", stt.KindFloat, "percent"),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather")
	op, err := NewVirtualProperty("apparent", "apparent_temp",
		"temperature + 0.33*(humidity/100*6.105*exp(17.27*temperature/(237.7+temperature))) - 4",
		"celsius", schema)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind() != KindVirtual {
		t.Error("kind")
	}
	if op.OutSchema().IndexOf("apparent_temp") != 2 {
		t.Fatalf("extended schema: %s", op.OutSchema())
	}
	if f, _ := op.OutSchema().Lookup("apparent_temp"); f.Unit != "celsius" || f.Kind != stt.KindFloat {
		t.Error("new field metadata")
	}

	tup := &stt.Tuple{
		Schema: schema,
		Values: []stt.Value{stt.Float(30), stt.Float(70)},
		Time:   t0, Lat: 34.69, Lon: 135.5,
	}
	tup.AlignSTT()
	got := runOp(t, op, feed(schema, []*stt.Tuple{tup}, false))
	if len(got) != 1 {
		t.Fatalf("got %d tuples", len(got))
	}
	at := got[0].MustGet("apparent_temp").AsFloat()
	if at < 34 || at > 38 {
		t.Errorf("apparent temperature = %v", at)
	}
	// Original tuple untouched (operators must not mutate inputs).
	if len(tup.Values) != 2 {
		t.Error("input tuple mutated")
	}
}

func TestVirtualPropertyErrors(t *testing.T) {
	schema := weatherSchema()
	if _, err := NewVirtualProperty("v", "x", "ghost + 1", "", schema); err == nil {
		t.Error("bad spec must fail")
	}
	if _, err := NewVirtualProperty("v", "temperature", "1 + 1", "", schema); err == nil {
		t.Error("duplicate property name must fail")
	}
	if _, err := NewVirtualProperty("v", "x", "null", "", schema); err == nil {
		t.Error("undetermined kind must fail")
	}
}

func TestCullerRate(t *testing.T) {
	for _, rate := range []float64{0, 0.25, 0.5, 0.9, 1} {
		c := newCuller(rate)
		kept := 0
		const n = 10000
		for i := 0; i < n; i++ {
			if c.keep() {
				kept++
			}
		}
		want := float64(n) * (1 - rate)
		if math.Abs(float64(kept)-want) > 1 {
			t.Errorf("rate %v: kept %d, want %v", rate, kept, want)
		}
	}
}

// Property: the culler keeps exactly ⌊n(1-r)⌋ or ⌈n(1-r)⌉ of any run.
func TestQuickCullerDeterministicFraction(t *testing.T) {
	f := func(n uint16, r8 uint8) bool {
		rate := float64(r8%101) / 100
		c := newCuller(rate)
		kept := 0
		for i := 0; i < int(n); i++ {
			if c.keep() {
				kept++
			}
		}
		exact := float64(n) * (1 - rate)
		return float64(kept) >= math.Floor(exact)-1 && float64(kept) <= math.Ceil(exact)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCullTime(t *testing.T) {
	// Cull 50% of tuples in [t0+10s, t0+20s]; outside passes through.
	op, err := NewCullTime("ct", 0.5, t0.Add(10*time.Second), t0.Add(20*time.Second), weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	var tuples []*stt.Tuple
	for i := 0; i < 30; i++ {
		tuples = append(tuples, wtuple(time.Duration(i)*time.Second, 20, "s"))
	}
	got := runOp(t, op, feed(weatherSchema(), tuples, false))
	// 30 tuples: 19 outside ([0,9] and [21,29]), 11 inside [10,20] culled to ~5.
	inside := 0
	for _, tup := range got {
		off := tup.Time.Sub(t0)
		if off >= 10*time.Second && off <= 20*time.Second {
			inside++
		}
	}
	if inside < 5 || inside > 6 {
		t.Errorf("kept %d inside the interval, want 5-6", inside)
	}
	if len(got)-inside != 19 {
		t.Errorf("outside tuples = %d, want 19 untouched", len(got)-inside)
	}
}

func TestCullTimeValidation(t *testing.T) {
	if _, err := NewCullTime("x", -0.1, t0, t0.Add(time.Second), weatherSchema()); err == nil {
		t.Error("negative rate must fail")
	}
	if _, err := NewCullTime("x", 1.1, t0, t0.Add(time.Second), weatherSchema()); err == nil {
		t.Error("rate > 1 must fail")
	}
	if _, err := NewCullTime("x", 0.5, t0.Add(time.Second), t0, weatherSchema()); err == nil {
		t.Error("inverted interval must fail")
	}
}

func TestCullSpace(t *testing.T) {
	area := geo.NewRect(geo.Point{Lat: 34.0, Lon: 135.0}, geo.Point{Lat: 35.0, Lon: 136.0})
	op, err := NewCullSpace("cs", 0.9, area, weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	var tuples []*stt.Tuple
	for i := 0; i < 100; i++ {
		tup := wtuple(time.Duration(i)*time.Second, 20, "in-area") // 34.69,135.50 inside
		tuples = append(tuples, tup)
	}
	// Plus 10 outside the area.
	for i := 0; i < 10; i++ {
		tup := wtuple(time.Duration(100+i)*time.Second, 20, "outside")
		tup.Lat, tup.Lon = 36.0, 140.0
		tuples = append(tuples, tup)
	}
	got := runOp(t, op, feed(weatherSchema(), tuples, false))
	insideKept, outsideKept := 0, 0
	for _, tup := range got {
		if tup.MustGet("station").AsString() == "outside" {
			outsideKept++
		} else {
			insideKept++
		}
	}
	if insideKept != 10 {
		t.Errorf("inside kept = %d, want 10 (r=0.9 of 100)", insideKept)
	}
	if outsideKept != 10 {
		t.Errorf("outside kept = %d, want all 10", outsideKept)
	}
}

func TestCullSpaceValidation(t *testing.T) {
	area := geo.NewRect(geo.Point{}, geo.Point{Lat: 1, Lon: 1})
	if _, err := NewCullSpace("x", 2, area, weatherSchema()); err == nil {
		t.Error("rate > 1 must fail")
	}
	bad := geo.Rect{Min: geo.Point{Lat: 99}, Max: geo.Point{Lat: 100}}
	if _, err := NewCullSpace("x", 0.5, bad, weatherSchema()); err == nil {
		t.Error("invalid area must fail")
	}
}

func TestCullRateOne_DropsEverythingInside(t *testing.T) {
	op, err := NewCullTime("all", 1.0, t0, t0.Add(time.Hour), weatherSchema())
	if err != nil {
		t.Fatal(err)
	}
	var tuples []*stt.Tuple
	for i := 0; i < 50; i++ {
		tuples = append(tuples, wtuple(time.Duration(i)*time.Second, 20, "s"))
	}
	got := runOp(t, op, feed(weatherSchema(), tuples, false))
	if len(got) != 0 {
		t.Errorf("r=1 must drop everything in the interval, kept %d", len(got))
	}
}
