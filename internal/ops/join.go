package ops

import (
	"fmt"
	"sort"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// Join implements s1 ⋈t_pred s2: every t time interval, the tuples of s1 and
// s2 collected in the interval are joined according to the join predicate.
//
// The output schema is the concatenation of the left and right schemas; a
// right-side attribute whose name collides with a left-side one is renamed
// "right_<name>". STT composition follows the consistency rules of the
// multigranular model: the output granularities are the coarsest of the two
// inputs, the themes are merged, and each result tuple carries the later of
// the two event times (re-truncated) and the midpoint of the two positions.
type Join struct {
	base
	interval time.Duration
	pred     *expr.Compiled
	left     *stt.Schema
	right    *stt.Schema

	leftWin  map[int64][]*stt.Tuple
	rightWin map[int64][]*stt.Tuple
	merger   *watermarkMerger
	flushed  int64 // highest window index already flushed + 1 (as lower bound)
}

// NewJoin compiles the predicate against both input schemas and derives the
// combined output schema.
func NewJoin(name string, interval time.Duration, predicate string, left, right *stt.Schema) (*Join, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("join %s: interval must be positive, got %v", name, interval)
	}
	pred, err := expr.CompileBool(predicate, expr.Env{Left: left, Right: right})
	if err != nil {
		return nil, fmt.Errorf("join %s: %w", name, err)
	}

	var fields []stt.Field
	fields = append(fields, left.Fields()...)
	taken := map[string]bool{}
	for _, f := range left.Fields() {
		taken[f.Name] = true
	}
	for _, f := range right.Fields() {
		if taken[f.Name] {
			f = stt.NewField("right_"+f.Name, f.Kind, f.Unit)
		}
		if taken[f.Name] {
			return nil, fmt.Errorf("join %s: attribute %q collides even after renaming", name, f.Name)
		}
		taken[f.Name] = true
		fields = append(fields, f)
	}
	out, err := stt.NewSchema(fields,
		left.TGran.Coarsest(right.TGran),
		left.SGran.Coarsest(right.SGran),
		stt.MergeThemes(left.Themes, right.Themes)...)
	if err != nil {
		return nil, fmt.Errorf("join %s: %w", name, err)
	}
	return &Join{
		base:     base{name: name, kind: KindJoin, out: out},
		interval: interval,
		pred:     pred,
		left:     left,
		right:    right,
		leftWin:  make(map[int64][]*stt.Tuple),
		rightWin: make(map[int64][]*stt.Tuple),
		merger:   newWatermarkMerger(2),
		flushed:  -1 << 62,
	}, nil
}

// combine builds the joined tuple from a matching pair.
func (j *Join) combine(l, r *stt.Tuple) *stt.Tuple {
	values := make([]stt.Value, 0, len(l.Values)+len(r.Values))
	values = append(values, l.Values...)
	values = append(values, r.Values...)
	ts := l.Time
	if r.Time.After(ts) {
		ts = r.Time
	}
	theme := l.Theme
	if theme == "" {
		theme = r.Theme
	}
	tup := &stt.Tuple{
		Schema: j.out,
		Values: values,
		Time:   ts,
		Lat:    (l.Lat + r.Lat) / 2,
		Lon:    (l.Lon + r.Lon) / 2,
		Theme:  theme,
		Source: l.Source + "+" + r.Source,
	}
	return tup.AlignSTT()
}

// flush joins and emits every window whose end has passed the combined
// watermark, in window order with input order preserved inside a window.
func (j *Join) flush(wm time.Time, out *stream.Stream) error {
	// Advance the flushed high-water mark from the watermark itself, so
	// late tuples are recognized even for windows that held no data.
	if limit := windowIndex(wm, j.interval); limit > j.flushed {
		j.flushed = limit
	}
	// Collect window indexes present on either side.
	seen := map[int64]bool{}
	for w := range j.leftWin {
		seen[w] = true
	}
	for w := range j.rightWin {
		seen[w] = true
	}
	var ready []int64
	for w := range seen {
		if !windowStart(w+1, j.interval).After(wm) {
			ready = append(ready, w)
		}
	}
	sort.Slice(ready, func(i, k int) bool { return ready[i] < ready[k] })
	for _, w := range ready {
		ls, rs := j.leftWin[w], j.rightWin[w]
		for _, l := range ls {
			for _, r := range rs {
				ok, err := j.pred.EvalBool(expr.Scope{Left: l, Right: r})
				if err != nil {
					return err
				}
				if ok {
					j.counters.Out.Add(1)
					out.Send(j.combine(l, r))
				}
			}
		}
		delete(j.leftWin, w)
		delete(j.rightWin, w)
	}
	return nil
}

// Run consumes both inputs, windowing each side and joining on flush.
// in[0] is the left input, in[1] the right.
func (j *Join) Run(in []*stream.Stream, out *stream.Stream) error {
	if len(in) != 2 {
		out.Close()
		return fmt.Errorf("join %s: want exactly 2 inputs, got %d", j.name, len(in))
	}
	defer out.Close()

	ch0, ch1 := in[0].C, in[1].C
	var lastEmitted time.Time
	for ch0 != nil || ch1 != nil {
		var item stream.Item
		var ok bool
		var side int
		select {
		case item, ok = <-ch0:
			side = 0
			if !ok {
				ch0 = nil
				continue
			}
		case item, ok = <-ch1:
			side = 1
			if !ok {
				ch1 = nil
				continue
			}
		}
		switch item.Kind {
		case stream.ItemTuple:
			j.counters.In.Add(1)
			w := windowIndex(item.Tuple.Time, j.interval)
			if w < j.flushed {
				// Late tuple: its window already flushed. Count as dropped.
				j.counters.Dropped.Add(1)
				continue
			}
			if side == 0 {
				j.leftWin[w] = append(j.leftWin[w], item.Tuple)
			} else {
				j.rightWin[w] = append(j.rightWin[w], item.Tuple)
			}
		case stream.ItemWatermark:
			wm, defined := j.merger.update(side, item.Watermark)
			if defined && wm.After(lastEmitted) {
				if err := j.flush(wm, out); err != nil {
					return fmt.Errorf("join %s: %w", j.name, err)
				}
				out.SendWatermark(wm)
				lastEmitted = wm
			}
		case stream.ItemEOS:
			wm, defined := j.merger.end(side)
			if defined && wm.After(lastEmitted) {
				if err := j.flush(wm, out); err != nil {
					return fmt.Errorf("join %s: %w", j.name, err)
				}
				if j.merger.allEnded() {
					continue // EOS emitted by deferred Close
				}
				out.SendWatermark(wm)
				lastEmitted = wm
			}
		}
	}
	// Flush any remainder (both inputs ended without trailing watermarks).
	if err := j.flush(time.Unix(0, 1<<62).UTC(), out); err != nil {
		return fmt.Errorf("join %s: %w", j.name, err)
	}
	return nil
}
