package ops

import (
	"testing"
	"time"
)

func TestParseUpdatePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want UpdatePolicy
		bad  bool
	}{
		{in: "", want: UpdatePolicy{Mode: UpdateEvent}},
		{in: "event", want: UpdatePolicy{Mode: UpdateEvent}},
		{in: "interval:250ms", want: UpdatePolicy{Mode: UpdateInterval, Every: 250 * time.Millisecond}},
		{in: "interval:1h", want: UpdatePolicy{Mode: UpdateInterval, Every: time.Hour}},
		{in: "count:100", want: UpdatePolicy{Mode: UpdateCount, N: 100}},
		{in: "interval:", bad: true},
		{in: "interval:-5s", bad: true},
		{in: "interval:0s", bad: true},
		{in: "count:", bad: true},
		{in: "count:0", bad: true},
		{in: "count:-3", bad: true},
		{in: "tick", bad: true},
		{in: "EVENT", bad: true},
	}
	for _, tc := range cases {
		got, err := ParseUpdatePolicy(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseUpdatePolicy(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseUpdatePolicy(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseUpdatePolicy(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []UpdatePolicy{
		{Mode: UpdateEvent},
		{}, // zero value normalizes to event
		{Mode: UpdateInterval, Every: 250 * time.Millisecond},
		{Mode: UpdateCount, N: 7},
	} {
		back, err := ParseUpdatePolicy(p.String())
		if err != nil {
			t.Fatalf("round trip of %+v: %v", p, err)
		}
		if back != p.Normalize() {
			t.Fatalf("round trip of %+v = %+v", p, back)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	valid := []UpdatePolicy{
		{},
		{Mode: UpdateEvent},
		{Mode: UpdateInterval, Every: time.Second},
		{Mode: UpdateCount, N: 1},
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", p, err)
		}
	}
	invalid := []UpdatePolicy{
		{Mode: UpdateInterval},
		{Mode: UpdateInterval, Every: -time.Second},
		{Mode: UpdateCount},
		{Mode: UpdateCount, N: -1},
		{Mode: "cron"},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted, want error", p)
		}
	}
}

func TestPolicyDueAndTick(t *testing.T) {
	ev := UpdatePolicy{Mode: UpdateEvent}
	if !ev.Due(1) || ev.Due(0) || ev.TickEvery() != 0 {
		t.Error("event policy: due on any pending change, no timer")
	}
	iv := UpdatePolicy{Mode: UpdateInterval, Every: time.Minute}
	if iv.Due(1000) || iv.TickEvery() != time.Minute {
		t.Error("interval policy: never due by count, timer = Every")
	}
	ct := UpdatePolicy{Mode: UpdateCount, N: 10}
	if ct.Due(9) || !ct.Due(10) || ct.TickEvery() != 0 {
		t.Error("count policy: due at N, no timer")
	}
}
