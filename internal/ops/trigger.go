package ops

import (
	"fmt"
	"sort"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// Activator is the control-plane interface Trigger operations use to start
// and stop sensor streams. *pubsub.Broker satisfies it.
type Activator interface {
	Activate(sensorID string) error
	Deactivate(sensorID string) error
}

// TriggerMode decides how the per-tuple condition aggregates over a window.
type TriggerMode string

// Trigger window modes: "any" fires when at least one tuple of the window
// satisfies the condition, "all" when every tuple does (and the window is
// non-empty).
const (
	TriggerAny TriggerMode = "any"
	TriggerAll TriggerMode = "all"
)

// FireEvent records one trigger decision, for the monitor and for tests.
type FireEvent struct {
	// Op is the trigger operation name.
	Op string
	// WindowStart identifies the evaluated window.
	WindowStart time.Time
	// Fired reports whether the condition held.
	Fired bool
	// Targets are the sensors activated/deactivated when Fired.
	Targets []string
}

// Trigger implements ⊕ON,t / ⊕OFF,t (s, {s1..sn}, cond): every t time
// interval the condition is checked on the tuples collected from s; if it is
// verified, the streams of the target sensors are activated (ON) or
// deactivated (OFF). The operation is pass-through on its data input, so it
// can sit anywhere in a dataflow.
type Trigger struct {
	base
	on       bool
	interval time.Duration
	cond     *expr.Compiled
	mode     TriggerMode
	targets  []string
	act      Activator
	onFire   func(FireEvent)

	windows map[int64][]*stt.Tuple
}

// NewTriggerOn builds a ⊕ON trigger.
func NewTriggerOn(name string, interval time.Duration, cond string, targets []string,
	mode TriggerMode, act Activator, onFire func(FireEvent), in *stt.Schema) (*Trigger, error) {
	return newTrigger(name, true, interval, cond, targets, mode, act, onFire, in)
}

// NewTriggerOff builds a ⊕OFF trigger.
func NewTriggerOff(name string, interval time.Duration, cond string, targets []string,
	mode TriggerMode, act Activator, onFire func(FireEvent), in *stt.Schema) (*Trigger, error) {
	return newTrigger(name, false, interval, cond, targets, mode, act, onFire, in)
}

func newTrigger(name string, on bool, interval time.Duration, cond string, targets []string,
	mode TriggerMode, act Activator, onFire func(FireEvent), in *stt.Schema) (*Trigger, error) {
	kind := KindTriggerOff
	if on {
		kind = KindTriggerOn
	}
	if interval <= 0 {
		return nil, fmt.Errorf("%s %s: interval must be positive, got %v", kind, name, interval)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("%s %s: needs at least one target sensor", kind, name)
	}
	if act == nil {
		return nil, fmt.Errorf("%s %s: needs an activator", kind, name)
	}
	if mode == "" {
		mode = TriggerAny
	}
	if mode != TriggerAny && mode != TriggerAll {
		return nil, fmt.Errorf("%s %s: unknown mode %q", kind, name, mode)
	}
	c, err := expr.CompileBool(cond, expr.Env{Schema: in})
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", kind, name, err)
	}
	return &Trigger{
		base:     base{name: name, kind: kind, out: in},
		on:       on,
		interval: interval,
		cond:     c,
		mode:     mode,
		targets:  append([]string(nil), targets...),
		act:      act,
		onFire:   onFire,
		windows:  make(map[int64][]*stt.Tuple),
	}, nil
}

// evaluate decides whether a window's tuples satisfy the trigger condition.
func (tr *Trigger) evaluate(tuples []*stt.Tuple) (bool, error) {
	if len(tuples) == 0 {
		return false, nil
	}
	for _, t := range tuples {
		ok, err := tr.cond.EvalBool(expr.Scope{Tuple: t})
		if err != nil {
			return false, err
		}
		if tr.mode == TriggerAny && ok {
			return true, nil
		}
		if tr.mode == TriggerAll && !ok {
			return false, nil
		}
	}
	return tr.mode == TriggerAll, nil
}

// fire applies the activation side effect.
func (tr *Trigger) fire(w int64) error {
	for _, target := range tr.targets {
		var err error
		if tr.on {
			err = tr.act.Activate(target)
		} else {
			err = tr.act.Deactivate(target)
		}
		if err != nil {
			return fmt.Errorf("%s %s: target %s: %w", tr.kind, tr.name, target, err)
		}
	}
	if tr.onFire != nil {
		tr.onFire(FireEvent{
			Op:          tr.name,
			WindowStart: windowStart(w, tr.interval),
			Fired:       true,
			Targets:     tr.targets,
		})
	}
	return nil
}

func (tr *Trigger) flush(wm time.Time) error {
	var ready []int64
	for w := range tr.windows {
		if !windowStart(w+1, tr.interval).After(wm) {
			ready = append(ready, w)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, w := range ready {
		fired, err := tr.evaluate(tr.windows[w])
		if err != nil {
			return fmt.Errorf("%s %s: %w", tr.kind, tr.name, err)
		}
		if fired {
			if err := tr.fire(w); err != nil {
				return err
			}
		} else if tr.onFire != nil {
			tr.onFire(FireEvent{Op: tr.name, WindowStart: windowStart(w, tr.interval), Fired: false})
		}
		delete(tr.windows, w)
	}
	return nil
}

// Run passes tuples through unchanged while caching them per window; windows
// are evaluated as watermarks pass.
func (tr *Trigger) Run(in []*stream.Stream, out *stream.Stream) error {
	if len(in) != 1 {
		out.Close()
		return fmt.Errorf("%s %s: want exactly 1 input, got %d", tr.kind, tr.name, len(in))
	}
	defer out.Close()
	for item := range in[0].C {
		switch item.Kind {
		case stream.ItemTuple:
			tr.counters.In.Add(1)
			w := windowIndex(item.Tuple.Time, tr.interval)
			tr.windows[w] = append(tr.windows[w], item.Tuple)
			tr.counters.Out.Add(1)
			out.Send(item.Tuple)
		case stream.ItemWatermark:
			if err := tr.flush(item.Watermark); err != nil {
				return err
			}
			out.SendWatermark(item.Watermark)
		case stream.ItemEOS:
			if err := tr.flush(time.Unix(0, 1<<62).UTC()); err != nil {
				return err
			}
		}
	}
	return nil
}
