package ops

import (
	"fmt"
	"math"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/geo"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// Filter implements σ(s, cond): tuples that do not satisfy cond are
// filtered out.
type Filter struct {
	base
	cond *expr.Compiled
}

// NewFilter compiles the condition against the input schema.
func NewFilter(name, cond string, in *stt.Schema) (*Filter, error) {
	c, err := expr.CompileBool(cond, expr.Env{Schema: in})
	if err != nil {
		return nil, fmt.Errorf("filter %s: %w", name, err)
	}
	return &Filter{
		base: base{name: name, kind: KindFilter, out: in},
		cond: c,
	}, nil
}

// Run consumes the input, emitting only satisfying tuples.
func (o *Filter) Run(in []*stream.Stream, out *stream.Stream) error {
	return o.runMap(in, out, func(t *stt.Tuple) (*stt.Tuple, error) {
		ok, err := o.cond.EvalBool(expr.Scope{Tuple: t})
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return t, nil
	})
}

// VirtualProperty implements ⊎s⟨p, spec⟩: a new attribute p is added to the
// schema of s according to the specification spec.
type VirtualProperty struct {
	base
	spec *expr.Compiled
}

// NewVirtualProperty compiles the specification and derives the extended
// schema. The unit annotates the new field (may be empty).
func NewVirtualProperty(name, property, spec, unit string, in *stt.Schema) (*VirtualProperty, error) {
	c, err := expr.Compile(spec, expr.Env{Schema: in})
	if err != nil {
		return nil, fmt.Errorf("virtual property %s: %w", name, err)
	}
	kind := c.Kind
	if kind == stt.KindNull {
		return nil, fmt.Errorf("virtual property %s: specification %q has undetermined kind", name, spec)
	}
	outSchema, err := in.WithField(stt.NewField(property, kind, unit))
	if err != nil {
		return nil, fmt.Errorf("virtual property %s: %w", name, err)
	}
	return &VirtualProperty{
		base: base{name: name, kind: KindVirtual, out: outSchema},
		spec: c,
	}, nil
}

// Run extends each tuple with the computed property.
func (o *VirtualProperty) Run(in []*stream.Stream, out *stream.Stream) error {
	return o.runMap(in, out, func(t *stt.Tuple) (*stt.Tuple, error) {
		v, err := o.spec.EvalTuple(t)
		if err != nil {
			return nil, err
		}
		ext := t.Clone()
		ext.Schema = o.out
		ext.Values = append(ext.Values, v)
		return ext, nil
	})
}

// culler drops a fraction r of matching tuples using a deterministic credit
// accumulator in integer billionths: over any run of n matching tuples it
// keeps ⌊n·(1−r)⌋ or ⌈n·(1−r)⌉, with no randomness and no floating-point
// drift, so replayed experiments cull identically.
type culler struct {
	keepPerBillion int64
	credit         int64
}

const cullScale = 1_000_000_000

func newCuller(rate float64) culler {
	return culler{keepPerBillion: int64(math.Round((1 - rate) * cullScale))}
}

// keep decides whether the next matching tuple survives.
func (c *culler) keep() bool {
	c.credit += c.keepPerBillion
	if c.credit >= cullScale {
		c.credit -= cullScale
		return true
	}
	return false
}

// CullTime implements γr(s, ⟨t1,t2⟩): tuples in the temporal interval
// [t1, t2] are culled by reducing rate r; tuples outside pass through.
type CullTime struct {
	base
	from, to time.Time
	cull     culler
}

// NewCullTime validates the interval and rate.
func NewCullTime(name string, rate float64, from, to time.Time, in *stt.Schema) (*CullTime, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("cull time %s: rate %v outside [0,1]", name, rate)
	}
	if to.Before(from) {
		return nil, fmt.Errorf("cull time %s: interval end %v before start %v", name, to, from)
	}
	return &CullTime{
		base: base{name: name, kind: KindCullTime, out: in},
		from: from, to: to,
		cull: newCuller(rate),
	}, nil
}

// Run culls tuples inside the temporal interval.
func (o *CullTime) Run(in []*stream.Stream, out *stream.Stream) error {
	return o.runMap(in, out, func(t *stt.Tuple) (*stt.Tuple, error) {
		inside := !t.Time.Before(o.from) && !t.Time.After(o.to)
		if inside && !o.cull.keep() {
			return nil, nil
		}
		return t, nil
	})
}

// CullSpace implements γr(s, ⟨coord1,coord2⟩): tuples falling in the area
// delimited by the two coordinates are culled by reducing rate r.
type CullSpace struct {
	base
	area geo.Rect
	cull culler
}

// NewCullSpace validates the area and rate.
func NewCullSpace(name string, rate float64, area geo.Rect, in *stt.Schema) (*CullSpace, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("cull space %s: rate %v outside [0,1]", name, rate)
	}
	if !area.Valid() {
		return nil, fmt.Errorf("cull space %s: invalid area %v", name, area)
	}
	return &CullSpace{
		base: base{name: name, kind: KindCullSpace, out: in},
		area: area,
		cull: newCuller(rate),
	}, nil
}

// Run culls tuples inside the area.
func (o *CullSpace) Run(in []*stream.Stream, out *stream.Stream) error {
	return o.runMap(in, out, func(t *stt.Tuple) (*stt.Tuple, error) {
		if o.area.Contains(geo.Point{Lat: t.Lat, Lon: t.Lon}) && !o.cull.keep() {
			return nil, nil
		}
		return t, nil
	})
}
