package ops

import (
	"math"
	"testing"
	"time"

	"streamloader/internal/stt"
)

func fahrenheitSchema() *stt.Schema {
	return stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "fahrenheit"),
		stt.NewField("station", stt.KindString, ""),
	}, stt.GranSecond, stt.SpatCellDistrict, "weather")
}

func TestTransformConvertUnit(t *testing.T) {
	op, err := NewTransform("t", []TransformStep{
		{Op: "convert_unit", Field: "temperature", ToUnit: "celsius"},
	}, fahrenheitSchema())
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := op.OutSchema().Lookup("temperature"); f.Unit != "celsius" {
		t.Errorf("schema unit = %q", f.Unit)
	}
	tup := &stt.Tuple{
		Schema: fahrenheitSchema(),
		Values: []stt.Value{stt.Float(212), stt.String("s")},
		Time:   t0, Lat: 34.69, Lon: 135.50,
	}
	tup.AlignSTT()
	got := runOp(t, op, feed(fahrenheitSchema(), []*stt.Tuple{tup}, false))
	if len(got) != 1 {
		t.Fatal("want 1 tuple")
	}
	if v := got[0].MustGet("temperature").AsFloat(); math.Abs(v-100) > 1e-9 {
		t.Errorf("212F = %vC, want 100", v)
	}
	// Null values pass through unconverted.
	tup2 := tup.Clone()
	tup2.Values[0] = stt.Null()
	got = runOp(t, mustTransform(t, []TransformStep{
		{Op: "convert_unit", Field: "temperature", ToUnit: "celsius"},
	}, fahrenheitSchema()), feed(fahrenheitSchema(), []*stt.Tuple{tup2}, false))
	if !got[0].MustGet("temperature").IsNull() {
		t.Error("null must stay null")
	}
}

func mustTransform(t *testing.T, steps []TransformStep, in *stt.Schema) *Transform {
	t.Helper()
	op, err := NewTransform("t", steps, in)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestTransformConvertCoord(t *testing.T) {
	op := mustTransform(t, []TransformStep{
		{Op: "convert_coord", FromSystem: "tokyo", ToSystem: "wgs84"},
	}, weatherSchema())
	tup := wtuple(0, 20, "s")
	origLat, origLon := tup.Lat, tup.Lon
	got := runOp(t, op, feed(weatherSchema(), []*stt.Tuple{tup}, false))
	if len(got) != 1 {
		t.Fatal("want 1 tuple")
	}
	if got[0].Lat == origLat && got[0].Lon == origLon {
		t.Error("coordinates unchanged after datum conversion")
	}
	// Datum shift in Japan is a few hundred meters; snapped to the schema's
	// district granularity the cell may or may not change, but the raw shift
	// must be small.
	if math.Abs(got[0].Lat-origLat) > 0.02 || math.Abs(got[0].Lon-origLon) > 0.02 {
		t.Errorf("datum shift too large: %v,%v -> %v,%v", origLat, origLon, got[0].Lat, got[0].Lon)
	}
}

func TestTransformRenameProject(t *testing.T) {
	op := mustTransform(t, []TransformStep{
		{Op: "rename", Field: "temperature", NewName: "temp_c"},
		{Op: "project", Fields: []string{"temp_c"}},
	}, weatherSchema())
	if op.OutSchema().NumFields() != 1 || op.OutSchema().IndexOf("temp_c") != 0 {
		t.Fatalf("schema = %s", op.OutSchema())
	}
	got := runOp(t, op, feed(weatherSchema(), []*stt.Tuple{wtuple(0, 21.5, "x")}, false))
	if got[0].MustGet("temp_c").AsFloat() != 21.5 {
		t.Errorf("renamed value = %v", got[0].Values[0])
	}
	if len(got[0].Values) != 1 {
		t.Error("projection must drop the station column")
	}
}

func TestTransformValidateRule(t *testing.T) {
	// The paper's example: dates conforming to given patterns.
	schema := stt.MustSchema([]stt.Field{
		stt.NewField("date", stt.KindString, ""),
	}, stt.GranSecond, stt.SpatPoint)
	op := mustTransform(t, []TransformStep{
		{Op: "validate", Rule: `matches_date(date, "YYYY-MM-DD")`},
	}, schema)
	mk := func(s string, off time.Duration) *stt.Tuple {
		tup := &stt.Tuple{Schema: schema, Values: []stt.Value{stt.String(s)}, Time: t0.Add(off)}
		return tup.AlignSTT()
	}
	got := runOp(t, op, feed(schema, []*stt.Tuple{
		mk("2016-03-15", 0), mk("15/03/2016", time.Second), mk("2016-03-16", 2*time.Second),
	}, false))
	if len(got) != 2 {
		t.Fatalf("validated %d, want 2", len(got))
	}
	_, _, dropped := op.Counters().Snapshot()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestTransformCoarsen(t *testing.T) {
	op := mustTransform(t, []TransformStep{
		{Op: "coarsen", TGran: "minute", SGran: "city"},
	}, weatherSchema())
	if op.OutSchema().TGran != stt.GranMinute || op.OutSchema().SGran != stt.SpatCellCity {
		t.Fatalf("schema granularities: %s", op.OutSchema())
	}
	tup := wtuple(42*time.Second, 20, "s")
	got := runOp(t, op, feed(weatherSchema(), []*stt.Tuple{tup}, false))
	if !got[0].Time.Equal(t0) {
		t.Errorf("time not coarsened: %v", got[0].Time)
	}
	if got[0].Lat != 34.6 {
		t.Errorf("lat not snapped to city cell: %v", got[0].Lat)
	}
}

func TestTransformChain(t *testing.T) {
	// Fahrenheit -> Celsius, then validate plausibility, then rename.
	op := mustTransform(t, []TransformStep{
		{Op: "convert_unit", Field: "temperature", ToUnit: "celsius"},
		{Op: "validate", Rule: "temperature > -50 && temperature < 60"},
		{Op: "rename", Field: "temperature", NewName: "temp_c"},
	}, fahrenheitSchema())
	mk := func(f float64, off time.Duration) *stt.Tuple {
		tup := &stt.Tuple{Schema: fahrenheitSchema(),
			Values: []stt.Value{stt.Float(f), stt.String("s")}, Time: t0.Add(off)}
		return tup.AlignSTT()
	}
	got := runOp(t, op, feed(fahrenheitSchema(), []*stt.Tuple{
		mk(77, 0),            // 25C: kept
		mk(999, time.Second), // 537C: dropped by validation
	}, false))
	if len(got) != 1 {
		t.Fatalf("got %d tuples, want 1", len(got))
	}
	if v := got[0].MustGet("temp_c").AsFloat(); math.Abs(v-25) > 1e-9 {
		t.Errorf("temp_c = %v, want 25", v)
	}
}

func TestTransformErrors(t *testing.T) {
	w := weatherSchema()
	cases := []struct {
		name  string
		steps []TransformStep
	}{
		{"no steps", nil},
		{"unknown op", []TransformStep{{Op: "teleport"}}},
		{"unknown field", []TransformStep{{Op: "convert_unit", Field: "ghost", ToUnit: "m"}}},
		{"non-numeric unit field", []TransformStep{{Op: "convert_unit", Field: "station", ToUnit: "m"}}},
		{"cross-dimension", []TransformStep{{Op: "convert_unit", Field: "temperature", ToUnit: "m"}}},
		{"unknown target unit", []TransformStep{{Op: "convert_unit", Field: "temperature", ToUnit: "cubits"}}},
		{"unknown coord system", []TransformStep{{Op: "convert_coord", FromSystem: "mars", ToSystem: "wgs84"}}},
		{"rename unknown", []TransformStep{{Op: "rename", Field: "ghost", NewName: "x"}}},
		{"rename empty", []TransformStep{{Op: "rename", Field: "temperature"}}},
		{"rename collision", []TransformStep{{Op: "rename", Field: "temperature", NewName: "station"}}},
		{"project empty", []TransformStep{{Op: "project"}}},
		{"project unknown", []TransformStep{{Op: "project", Fields: []string{"ghost"}}}},
		{"validate bad rule", []TransformStep{{Op: "validate", Rule: "ghost > 1"}}},
		{"refine temporal", []TransformStep{{Op: "coarsen", TGran: "millisecond"}}},
		{"bad tgran", []TransformStep{{Op: "coarsen", TGran: "fortnight"}}},
		{"bad sgran", []TransformStep{{Op: "coarsen", SGran: "galaxy"}}},
	}
	for _, c := range cases {
		if _, err := NewTransform("t", c.steps, w); err == nil {
			t.Errorf("%s: construction succeeded, want error", c.name)
		}
	}
	// Refining spatial granularity must fail too.
	coarse := w.WithGranularities(stt.GranHour, stt.SpatCellCity)
	if _, err := NewTransform("t", []TransformStep{{Op: "coarsen", SGran: "street"}}, coarse); err == nil {
		t.Error("spatial refinement must fail")
	}
}

func TestTransformUnitFieldNoSourceUnit(t *testing.T) {
	schema := stt.MustSchema([]stt.Field{
		stt.NewField("x", stt.KindFloat, ""),
	}, stt.GranSecond, stt.SpatPoint)
	if _, err := NewTransform("t", []TransformStep{
		{Op: "convert_unit", Field: "x", ToUnit: "m"},
	}, schema); err == nil {
		t.Error("conversion without source unit must fail")
	}
}
