package ops

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// AggFunc is one of the aggregation functions of Table 1.
type AggFunc string

// The aggregation functions: op ∈ {COUNT, AVG, SUM, MIN, MAX}.
const (
	AggCount AggFunc = "COUNT"
	AggAvg   AggFunc = "AVG"
	AggSum   AggFunc = "SUM"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// Subtractable reports whether the function's partial state can exactly
// un-observe a contribution: COUNT, SUM and AVG carry only a count and a
// sum, both linear, so removing an event is one subtraction. MIN and MAX
// are not — once an extremum is folded in, forgetting it needs a rescan of
// the surviving inputs.
func (f AggFunc) Subtractable() bool {
	switch f {
	case AggCount, AggSum, AggAvg:
		return true
	}
	return false
}

// ParseAggFunc validates an aggregation function name (case-insensitive).
func ParseAggFunc(s string) (AggFunc, error) {
	switch AggFunc(strings.ToUpper(s)) {
	case AggCount:
		return AggCount, nil
	case AggAvg:
		return AggAvg, nil
	case AggSum:
		return AggSum, nil
	case AggMin:
		return AggMin, nil
	case AggMax:
		return AggMax, nil
	}
	return "", fmt.Errorf("ops: unknown aggregation function %q", s)
}

// Aggregate implements @[t,{a1..an}]op(s): every t time interval, aggregate
// s grouped on the attributes {a1..an} and apply op to the aggregated
// attribute. The output schema is the group-by attributes followed by the
// result attribute ("count", or "<op>_<attr>").
type Aggregate struct {
	base
	interval  time.Duration
	fn        AggFunc
	attrIdx   int // -1 for COUNT
	groupIdxs []int

	windows map[int64]map[string]*aggState
}

type aggState struct {
	groupVals      []stt.Value
	count          int64
	sum            float64
	minV, maxV     float64
	sumLat, sumLon float64
	lastTheme      string
	lastSource     string
}

// NewAggregate validates the configuration against the input schema.
// attr may be empty for COUNT.
func NewAggregate(name string, interval time.Duration, groupBy []string, fn AggFunc, attr string, in *stt.Schema) (*Aggregate, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("aggregate %s: interval must be positive, got %v", name, interval)
	}
	if _, err := ParseAggFunc(string(fn)); err != nil {
		return nil, fmt.Errorf("aggregate %s: %w", name, err)
	}
	a := &Aggregate{
		base:     base{name: name, kind: KindAggregate},
		interval: interval,
		fn:       fn,
		attrIdx:  -1,
		windows:  make(map[int64]map[string]*aggState),
	}

	var outFields []stt.Field
	for _, g := range groupBy {
		f, ok := in.Lookup(g)
		if !ok {
			return nil, fmt.Errorf("aggregate %s: unknown group-by attribute %q", name, g)
		}
		a.groupIdxs = append(a.groupIdxs, in.IndexOf(g))
		outFields = append(outFields, f)
	}

	var resultField stt.Field
	if fn == AggCount {
		if attr != "" {
			// COUNT(attr) counts non-null values of attr.
			idx := in.IndexOf(attr)
			if idx < 0 {
				return nil, fmt.Errorf("aggregate %s: unknown attribute %q", name, attr)
			}
			a.attrIdx = idx
			resultField = stt.NewField("count_"+attr, stt.KindInt, "")
		} else {
			resultField = stt.NewField("count", stt.KindInt, "")
		}
	} else {
		if attr == "" {
			return nil, fmt.Errorf("aggregate %s: %s needs an attribute", name, fn)
		}
		f, ok := in.Lookup(attr)
		if !ok {
			return nil, fmt.Errorf("aggregate %s: unknown attribute %q", name, attr)
		}
		if !f.Kind.Numeric() {
			return nil, fmt.Errorf("aggregate %s: %s(%s) needs a numeric attribute, %q is %s",
				name, fn, attr, attr, f.Kind)
		}
		a.attrIdx = in.IndexOf(attr)
		resultField = stt.NewField(strings.ToLower(string(fn))+"_"+attr, stt.KindFloat, f.Unit)
	}
	outFields = append(outFields, resultField)

	// The output is represented at the window's temporal resolution: keep
	// the finest granularity not finer than the input's.
	out, err := stt.NewSchema(outFields, in.TGran, in.SGran, in.Themes...)
	if err != nil {
		return nil, fmt.Errorf("aggregate %s: %w", name, err)
	}
	a.out = out
	return a, nil
}

// groupKey renders the group-by values as a deterministic map key.
func (a *Aggregate) groupKey(t *stt.Tuple) string {
	if len(a.groupIdxs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, idx := range a.groupIdxs {
		if i > 0 {
			b.WriteByte('\x00')
		}
		b.WriteString(t.Values[idx].String())
	}
	return b.String()
}

func (a *Aggregate) absorb(t *stt.Tuple) {
	w := windowIndex(t.Time, a.interval)
	groups := a.windows[w]
	if groups == nil {
		groups = make(map[string]*aggState)
		a.windows[w] = groups
	}
	key := a.groupKey(t)
	st := groups[key]
	if st == nil {
		st = &aggState{minV: math.Inf(1), maxV: math.Inf(-1)}
		st.groupVals = make([]stt.Value, len(a.groupIdxs))
		for i, idx := range a.groupIdxs {
			st.groupVals[i] = t.Values[idx]
		}
		groups[key] = st
	}
	if a.attrIdx >= 0 {
		v := t.Values[a.attrIdx]
		if v.IsNull() {
			// Nulls contribute to neither numeric aggregates nor COUNT(attr).
			st.absorbPosition(t)
			return
		}
		f := v.AsFloat()
		st.count++
		st.sum += f
		st.minV = math.Min(st.minV, f)
		st.maxV = math.Max(st.maxV, f)
	} else {
		st.count++
	}
	st.absorbPosition(t)
}

// absorbPosition accumulates the spatial centroid and STT tags regardless of
// whether the payload contributed to the aggregate.
func (st *aggState) absorbPosition(t *stt.Tuple) {
	st.sumLat += t.Lat
	st.sumLon += t.Lon
	st.lastTheme = t.Theme
	st.lastSource = t.Source
}

// flush emits every window whose end is at or before wm, in window order
// with deterministic group order.
func (a *Aggregate) flush(wm time.Time, out *stream.Stream) {
	var ready []int64
	for w := range a.windows {
		end := windowStart(w+1, a.interval)
		if !end.After(wm) {
			ready = append(ready, w)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, w := range ready {
		groups := a.windows[w]
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		start := windowStart(w, a.interval)
		for _, k := range keys {
			st := groups[k]
			tup := a.emitTuple(st, start)
			if tup != nil {
				a.counters.Out.Add(1)
				out.Send(tup)
			}
		}
		delete(a.windows, w)
	}
}

func (a *Aggregate) emitTuple(st *aggState, windowStart time.Time) *stt.Tuple {
	var result stt.Value
	switch a.fn {
	case AggCount:
		result = stt.Int(st.count)
	case AggSum:
		result = stt.Float(st.sum)
	case AggAvg:
		if st.count == 0 {
			result = stt.Null()
		} else {
			result = stt.Float(st.sum / float64(st.count))
		}
	case AggMin:
		if st.count == 0 {
			result = stt.Null()
		} else {
			result = stt.Float(st.minV)
		}
	case AggMax:
		if st.count == 0 {
			result = stt.Null()
		} else {
			result = stt.Float(st.maxV)
		}
	}
	values := make([]stt.Value, 0, len(st.groupVals)+1)
	values = append(values, st.groupVals...)
	values = append(values, result)

	// The centroid divisor counts every absorbed tuple, including ones with
	// null payloads; count tracks contributing tuples only, so recompute.
	n := float64(st.count)
	if n == 0 {
		n = 1
	}
	tup := &stt.Tuple{
		Schema: a.out,
		Values: values,
		Time:   windowStart,
		Lat:    st.sumLat / n,
		Lon:    st.sumLon / n,
		Theme:  st.lastTheme,
		Source: a.name,
	}
	return tup.AlignSTT()
}

// Run maintains the window cache and flushes on watermarks.
func (a *Aggregate) Run(in []*stream.Stream, out *stream.Stream) error {
	if len(in) != 1 {
		out.Close()
		return fmt.Errorf("aggregate %s: want exactly 1 input, got %d", a.name, len(in))
	}
	defer out.Close()
	for item := range in[0].C {
		switch item.Kind {
		case stream.ItemTuple:
			a.counters.In.Add(1)
			a.absorb(item.Tuple)
		case stream.ItemWatermark:
			a.flush(item.Watermark, out)
			out.SendWatermark(item.Watermark)
		case stream.ItemEOS:
			a.flush(time.Unix(0, 1<<62).UTC(), out)
		}
	}
	return nil
}
