// Package ops implements the stream-processing operations of the paper's
// Table 1: Aggregation, Cull Time, Cull Space, Filter, Join, Transform,
// Trigger On, Trigger Off and Virtual Property.
//
// Operations are event-driven processes: each runs as one goroutine
// consuming input streams and producing one output stream, mirroring the
// paper's "processes are generated for each operation of the dataflow".
// Non-blocking operations (filter, cull-time/space, transform, virtual
// property) apply to each tuple as it is processed; blocking operations
// (aggregation, trigger, join) maintain a cache of tuples that is processed
// every t time interval, driven by event-time watermarks.
package ops

import (
	"fmt"
	"sync/atomic"
	"time"

	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// Kind identifies an operation of Table 1.
type Kind string

// The operation kinds. Source and Sink are the pseudo-operations that bind
// a dataflow to sensors and destinations; they are placed by the executor.
const (
	KindFilter     Kind = "filter"
	KindTransform  Kind = "transform"
	KindVirtual    Kind = "virtual_property"
	KindCullTime   Kind = "cull_time"
	KindCullSpace  Kind = "cull_space"
	KindAggregate  Kind = "aggregate"
	KindJoin       Kind = "join"
	KindTriggerOn  Kind = "trigger_on"
	KindTriggerOff Kind = "trigger_off"
	KindSource     Kind = "source"
	KindSink       Kind = "sink"
)

// Blocking reports whether the operation kind maintains a window cache
// (paper §3: aggregation, trigger and join are blocking; the others are
// applied directly on each tuple).
func (k Kind) Blocking() bool {
	switch k {
	case KindAggregate, KindJoin, KindTriggerOn, KindTriggerOff:
		return true
	default:
		return false
	}
}

// Valid reports whether k names a deployable operation kind.
func (k Kind) Valid() bool {
	switch k {
	case KindFilter, KindTransform, KindVirtual, KindCullTime, KindCullSpace,
		KindAggregate, KindJoin, KindTriggerOn, KindTriggerOff, KindSource, KindSink:
		return true
	default:
		return false
	}
}

// Counters exposes the running tuple counts of one operation process. The
// monitor samples them to compute the tuples/second figures of the paper's
// Figure 3.
type Counters struct {
	In      atomic.Uint64 // tuples consumed
	Out     atomic.Uint64 // tuples produced
	Dropped atomic.Uint64 // tuples culled/filtered/invalidated
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() (in, out, dropped uint64) {
	return c.In.Load(), c.Out.Load(), c.Dropped.Load()
}

// Operator is one runnable operation process.
type Operator interface {
	// Name is the dataflow-unique operation name.
	Name() string
	// Kind is the Table 1 operation this process implements.
	Kind() Kind
	// OutSchema is the schema of the produced stream.
	OutSchema() *stt.Schema
	// Counters exposes the live tuple counters.
	Counters() *Counters
	// Run consumes the inputs until EOS and closes out. It is called once,
	// on its own goroutine, by the executor.
	Run(in []*stream.Stream, out *stream.Stream) error
}

// base carries the common operator identity.
type base struct {
	name     string
	kind     Kind
	out      *stt.Schema
	counters Counters
}

func (b *base) Name() string           { return b.name }
func (b *base) Kind() Kind             { return b.kind }
func (b *base) OutSchema() *stt.Schema { return b.out }
func (b *base) Counters() *Counters    { return &b.counters }

// runMap is the shared loop of the non-blocking operations: apply f to each
// tuple, forward watermarks unchanged. f returns the tuples to emit (nil to
// drop) — every non-blocking operation of Table 1 is a special case.
func (b *base) runMap(in []*stream.Stream, out *stream.Stream, f func(*stt.Tuple) (*stt.Tuple, error)) error {
	if len(in) != 1 {
		out.Close()
		return fmt.Errorf("%s: want exactly 1 input, got %d", b.name, len(in))
	}
	defer out.Close()
	for item := range in[0].C {
		switch item.Kind {
		case stream.ItemTuple:
			b.counters.In.Add(1)
			res, err := f(item.Tuple)
			if err != nil {
				return fmt.Errorf("%s: %w", b.name, err)
			}
			if res == nil {
				b.counters.Dropped.Add(1)
				continue
			}
			b.counters.Out.Add(1)
			out.Send(res)
		case stream.ItemWatermark:
			out.SendWatermark(item.Watermark)
		case stream.ItemEOS:
			// Close happens via defer after the channel drains.
		}
	}
	return nil
}

// windowIndex maps an event time to its window ordinal for a given interval.
// Negative times floor toward minus infinity so windows are stable across
// the epoch.
func windowIndex(ts time.Time, interval time.Duration) int64 {
	n := ts.UnixNano()
	i := n / int64(interval)
	if n < 0 && n%int64(interval) != 0 {
		i--
	}
	return i
}

// windowStart returns the start instant of window i.
func windowStart(i int64, interval time.Duration) time.Time {
	return time.Unix(0, i*int64(interval)).UTC()
}

// watermarkMerger tracks per-input watermarks and yields the combined
// (minimum) watermark across inputs that have not reached EOS. Once an
// input ends its watermark is treated as +infinity.
type watermarkMerger struct {
	marks []time.Time
	ended []bool
}

func newWatermarkMerger(n int) *watermarkMerger {
	return &watermarkMerger{marks: make([]time.Time, n), ended: make([]bool, n)}
}

// update records a watermark for input i and returns the combined watermark
// plus whether it is defined (it is undefined until every open input has
// reported at least once).
func (m *watermarkMerger) update(i int, ts time.Time) (time.Time, bool) {
	if ts.After(m.marks[i]) {
		m.marks[i] = ts
	}
	return m.combined()
}

// end marks input i as finished.
func (m *watermarkMerger) end(i int) (time.Time, bool) {
	m.ended[i] = true
	return m.combined()
}

func (m *watermarkMerger) combined() (time.Time, bool) {
	var combined time.Time
	first := true
	for i := range m.marks {
		if m.ended[i] {
			continue
		}
		if m.marks[i].IsZero() {
			return time.Time{}, false // an open input has not reported yet
		}
		if first || m.marks[i].Before(combined) {
			combined = m.marks[i]
			first = false
		}
	}
	if first {
		// All inputs ended: everything may flush.
		return time.Unix(0, 1<<62).UTC(), true
	}
	return combined, true
}

// allEnded reports whether every input reached EOS.
func (m *watermarkMerger) allEnded() bool {
	for _, e := range m.ended {
		if !e {
			return false
		}
	}
	return true
}
