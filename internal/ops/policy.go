package ops

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// UpdateMode selects when a standing computation publishes its state.
type UpdateMode string

const (
	// UpdateEvent publishes after every state change.
	UpdateEvent UpdateMode = "event"
	// UpdateInterval publishes on a fixed wall-clock period.
	UpdateInterval UpdateMode = "interval"
	// UpdateCount publishes once at least N changes have accumulated.
	UpdateCount UpdateMode = "count"
)

// UpdatePolicy is the scheduling side of the paper's trigger vocabulary
// applied to standing queries: where the ⊕ON,t activator (trigger.go)
// decides when a stream operator may emit within a window, UpdatePolicy
// decides when a continuously-maintained result is pushed to its
// subscribers. The three modes mirror the activation conditions the
// trigger operators compose from — per tuple (event), per timer tick
// (interval), and per accumulated count — so a view's freshness/cost
// trade-off is expressed in the same terms as the streaming plan's.
//
// A policy only schedules publication; it never affects what the state is.
// The maintained result is identical under every policy — only the push
// cadence differs.
type UpdatePolicy struct {
	// Mode picks the scheduling rule; the zero value normalizes to
	// UpdateEvent.
	Mode UpdateMode
	// Every is the publication period for UpdateInterval.
	Every time.Duration
	// N is the change threshold for UpdateCount.
	N int
}

// ParseUpdatePolicy parses the wire form of a policy: "" or "event",
// "interval:<duration>" (e.g. "interval:250ms"), or "count:<n>".
func ParseUpdatePolicy(s string) (UpdatePolicy, error) {
	switch {
	case s == "" || s == string(UpdateEvent):
		return UpdatePolicy{Mode: UpdateEvent}, nil
	case strings.HasPrefix(s, string(UpdateInterval)+":"):
		d, err := time.ParseDuration(s[len(UpdateInterval)+1:])
		if err != nil || d <= 0 {
			return UpdatePolicy{}, fmt.Errorf("ops: bad update policy %q (want interval:<positive duration>)", s)
		}
		return UpdatePolicy{Mode: UpdateInterval, Every: d}, nil
	case strings.HasPrefix(s, string(UpdateCount)+":"):
		n, err := strconv.Atoi(s[len(UpdateCount)+1:])
		if err != nil || n <= 0 {
			return UpdatePolicy{}, fmt.Errorf("ops: bad update policy %q (want count:<positive int>)", s)
		}
		return UpdatePolicy{Mode: UpdateCount, N: n}, nil
	default:
		return UpdatePolicy{}, fmt.Errorf("ops: bad update policy %q (want event, interval:<dur> or count:<n>)", s)
	}
}

// Normalize fills the zero value in as UpdateEvent and returns the policy.
func (p UpdatePolicy) Normalize() UpdatePolicy {
	if p.Mode == "" {
		p.Mode = UpdateEvent
	}
	return p
}

// Validate rejects a policy whose mode is unknown or whose parameter is
// missing for its mode.
func (p UpdatePolicy) Validate() error {
	switch p.Normalize().Mode {
	case UpdateEvent:
		return nil
	case UpdateInterval:
		if p.Every <= 0 {
			return fmt.Errorf("ops: interval policy needs a positive period, got %v", p.Every)
		}
	case UpdateCount:
		if p.N <= 0 {
			return fmt.Errorf("ops: count policy needs a positive threshold, got %d", p.N)
		}
	default:
		return fmt.Errorf("ops: unknown update mode %q", p.Mode)
	}
	return nil
}

// String renders the canonical wire form; the inverse of ParseUpdatePolicy.
func (p UpdatePolicy) String() string {
	switch p.Normalize().Mode {
	case UpdateInterval:
		return string(UpdateInterval) + ":" + p.Every.String()
	case UpdateCount:
		return string(UpdateCount) + ":" + strconv.Itoa(p.N)
	default:
		return string(UpdateEvent)
	}
}

// Due reports whether pending accumulated changes warrant a publication
// right now, independent of any timer. Interval mode always answers false —
// its publications ride the TickEvery timer alone.
func (p UpdatePolicy) Due(pending int64) bool {
	switch p.Normalize().Mode {
	case UpdateCount:
		return pending >= int64(p.N)
	case UpdateInterval:
		return false
	default:
		return pending > 0
	}
}

// TickEvery returns the timer period a scheduler should run for this
// policy, or zero when no timer is needed.
func (p UpdatePolicy) TickEvery() time.Duration {
	if p.Normalize().Mode == UpdateInterval {
		return p.Every
	}
	return 0
}
