// Package streamloader's root benchmark harness regenerates every table and
// figure of the paper's evaluation surface, as indexed in DESIGN.md §4 and
// recorded in EXPERIMENTS.md:
//
//	E1  Table 1   BenchmarkTable1_*          per-operation throughput
//	E2  Figure 1  BenchmarkFigure1_*         end-to-end over the network
//	E3  Figure 2  BenchmarkFigure2_*         validate/translate/sample
//	E4  Figure 3  BenchmarkFigure3_*         monitoring overhead
//	E5  Scenario  BenchmarkScenario_Osaka    the demo dataflow, one day
//	E6  P3        BenchmarkP3_HotSwap        reconfiguration cycle
//	A1–A4         BenchmarkAblation_*        design-choice ablations
//
// Run with: go test -bench=. -benchmem
package streamloader

import (
	"fmt"
	"testing"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/dsn"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/ops"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
	"streamloader/internal/warehouse"
)

var benchT0 = time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)

// ---------------------------------------------------------------------------
// E1 — Table 1: per-operation throughput microbenchmarks.
// ---------------------------------------------------------------------------

var benchWeather = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
	stt.NewField("humidity", stt.KindFloat, "percent"),
	stt.NewField("station", stt.KindString, ""),
}, stt.GranSecond, stt.SpatCellDistrict, "weather")

// benchTuples builds n deterministic weather tuples, one per second.
func benchTuples(n int) []*stt.Tuple {
	out := make([]*stt.Tuple, n)
	stations := []string{"umeda", "namba", "tennoji", "sakai"}
	for i := 0; i < n; i++ {
		tup := &stt.Tuple{
			Schema: benchWeather,
			Values: []stt.Value{
				stt.Float(15 + float64(i%20)),
				stt.Float(40 + float64(i%50)),
				stt.String(stations[i%4]),
			},
			Time:  benchT0.Add(time.Duration(i) * time.Second),
			Lat:   34.5 + float64(i%40)*0.01,
			Lon:   135.3 + float64(i%40)*0.01,
			Theme: "weather", Source: "bench",
			Seq: uint64(i),
		}
		out[i] = tup.AlignSTT()
	}
	return out
}

// runOpBench drives one operator over the prepared tuples b.N times and
// reports tuples/sec.
func runOpBench(b *testing.B, tuples []*stt.Tuple, mk func() ops.Operator) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := mk()
		in := stream.New("in", benchWeather, 1024)
		out := stream.New("out", op.OutSchema(), 1024)
		go func() {
			for _, t := range tuples {
				in.Send(t)
			}
			in.SendWatermark(tuples[len(tuples)-1].Time)
			in.Close()
		}()
		done := make(chan error, 1)
		go func() { done <- op.Run([]*stream.Stream{in}, out) }()
		out.Drain()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(tuples)*b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

const opBenchTuples = 100_000

func BenchmarkTable1_Filter(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewFilter("f", "temperature > 25", benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

func BenchmarkTable1_Transform(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewTransform("t", []ops.TransformStep{
			{Op: "convert_unit", Field: "temperature", ToUnit: "fahrenheit"},
			{Op: "validate", Rule: "temperature > -100"},
		}, benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

func BenchmarkTable1_VirtualProperty(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewVirtualProperty("v", "apparent_temp",
			"temperature + 0.33*(humidity/100*6.105*exp(17.27*temperature/(237.7+temperature))) - 4",
			"celsius", benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

func BenchmarkTable1_CullTime(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewCullTime("ct", 0.9,
			benchT0, benchT0.Add(time.Duration(opBenchTuples)*time.Second), benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

func BenchmarkTable1_CullSpace(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewCullSpace("cs", 0.9, geo.Osaka, benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

func BenchmarkTable1_Aggregation(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewAggregate("a", time.Minute, []string{"station"},
			ops.AggAvg, "temperature", benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

func BenchmarkTable1_TriggerOn(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	act := benchActivator{}
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewTriggerOn("tr", time.Minute, "temperature > 30",
			[]string{"rain-1"}, ops.TriggerAny, act, nil, benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

func BenchmarkTable1_TriggerOff(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	act := benchActivator{}
	runOpBench(b, tuples, func() ops.Operator {
		op, err := ops.NewTriggerOff("tr", time.Minute, "temperature < 16",
			[]string{"rain-1"}, ops.TriggerAny, act, nil, benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		return op
	})
}

type benchActivator struct{}

func (benchActivator) Activate(string) error   { return nil }
func (benchActivator) Deactivate(string) error { return nil }

func BenchmarkTable1_Join(b *testing.B) {
	// Join is two-input: drive it directly rather than via runOpBench.
	const n = 20_000
	left := benchTuples(n)
	right := benchTuples(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, err := ops.NewJoin("j", time.Minute, "left.station == right.station",
			benchWeather, benchWeather)
		if err != nil {
			b.Fatal(err)
		}
		l := stream.New("l", benchWeather, 1024)
		r := stream.New("r", benchWeather, 1024)
		out := stream.New("out", op.OutSchema(), 1024)
		feed := func(s *stream.Stream, tuples []*stt.Tuple) {
			for _, t := range tuples {
				s.Send(t)
				s.SendWatermark(t.Time)
			}
			s.Close()
		}
		go feed(l, left)
		go feed(r, right)
		done := make(chan error, 1)
		go func() { done <- op.Run([]*stream.Stream{l, r}, out) }()
		out.Drain()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// ---------------------------------------------------------------------------
// Shared deployment rig for the system-level benchmarks.
// ---------------------------------------------------------------------------

type benchRig struct {
	net     *network.Network
	broker  *pubsub.Broker
	sensors map[string]*sensor.Sensor
	mon     *monitor.Monitor
	exec    *executor.Executor
}

// newBenchRig builds a topology of the given size with fast 1 Hz temperature
// sensors (and optional extras), a monitor, and a replay executor.
func newBenchRig(b *testing.B, nodes int, withMonitor bool, strategy network.Strategy,
	buffer int, extra []sensor.Spec) *benchRig {
	b.Helper()
	net, err := network.Star(network.TopologyConfig{
		Nodes: nodes, Area: geo.Osaka, Capacity: 1000, BandwidthKbps: 1e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	broker := pubsub.NewBroker("bench")
	sensors := map[string]*sensor.Sensor{}
	specs := append([]sensor.Spec{
		{ID: "temp-1", Type: sensor.TypeTemperature, Location: geo.OsakaCenter,
			NodeID: "node-00", Seed: 1, FrequencyHz: 1},
	}, extra...)
	for _, spec := range specs {
		s, err := sensor.New(spec)
		if err != nil {
			b.Fatal(err)
		}
		sensors[s.ID()] = s
		if err := broker.Publish(s.Meta()); err != nil {
			b.Fatal(err)
		}
	}
	var mon *monitor.Monitor
	if withMonitor {
		mon = monitor.New()
	}
	if strategy == nil {
		strategy = network.LeastLoaded{}
	}
	exec, err := executor.New(executor.Config{
		Network: net, Broker: broker, Strategy: strategy, Monitor: mon,
		Clock:  stream.NewVirtualClock(time.Unix(0, 0)),
		Buffer: buffer,
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return &benchRig{net: net, broker: broker, sensors: sensors, mon: mon, exec: exec}
}

// pipelineSpec builds source -> filter -> (optional aggregate) -> sink.
func pipelineSpec(name string, blocking bool) *dataflow.Spec {
	spec := &dataflow.Spec{
		Name: name,
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "f", Kind: "filter", Cond: "temperature > -100"},
			{ID: "out", Kind: "sink", Sink: "discard"},
		},
	}
	if blocking {
		spec.Nodes = append(spec.Nodes[:2:2],
			dataflow.NodeSpec{ID: "agg", Kind: "aggregate", IntervalMS: 60_000,
				Func: "AVG", Attr: "temperature"},
			spec.Nodes[2])
		spec.Edges = []dataflow.EdgeSpec{
			{From: "src", To: "f"}, {From: "f", To: "agg"}, {From: "agg", To: "out"},
		}
	} else {
		spec.Edges = []dataflow.EdgeSpec{
			{From: "src", To: "f"}, {From: "f", To: "out"},
		}
	}
	return spec
}

// replayBench deploys the spec fresh per iteration and replays one hour of
// event time (3600 tuples at 1 Hz), reporting tuples/sec.
func replayBench(b *testing.B, rig *benchRig, spec *dataflow.Spec) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := rig.exec.Deploy(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Run(benchT0, benchT0.Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
		d.Undeploy()
	}
	b.StopTimer()
	b.ReportMetric(float64(3600*b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// ---------------------------------------------------------------------------
// E2 — Figure 1: end-to-end execution across the network.
// ---------------------------------------------------------------------------

func BenchmarkFigure1_EndToEnd(b *testing.B) {
	for _, nodes := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			rig := newBenchRig(b, nodes, false, nil, 0, nil)
			replayBench(b, rig, pipelineSpec("e2e", false))
		})
	}
	for _, chain := range []string{"nonblocking", "blocking"} {
		b.Run("chain="+chain, func(b *testing.B) {
			rig := newBenchRig(b, 4, false, nil, 0, nil)
			replayBench(b, rig, pipelineSpec("e2e", chain == "blocking"))
		})
	}
}

// ---------------------------------------------------------------------------
// E3 — Figure 2: the design environment (validate, translate, sample).
// ---------------------------------------------------------------------------

// osakaSpec is the paper's Figure 2 dataflow against the bench fleet.
func osakaSpec() *dataflow.Spec {
	return &dataflow.Spec{
		Name: "osaka",
		Nodes: []dataflow.NodeSpec{
			{ID: "temp", Kind: "source", Sensor: "temp-1"},
			{ID: "hot", Kind: "trigger_on", IntervalMS: 3600_000,
				Cond: "temperature > 25", Targets: []string{"rain-1", "tweet-1", "traffic-1"}},
			{ID: "tsink", Kind: "sink", Sink: "discard"},
			{ID: "rain", Kind: "source", Sensor: "rain-1"},
			{ID: "torr", Kind: "filter", Cond: "rain_rate > 30"},
			{ID: "rsink", Kind: "sink", Sink: "discard"},
			{ID: "tweets", Kind: "source", Sensor: "tweet-1"},
			{ID: "cull", Kind: "cull_space", Rate: 0.5, Area: &geo.Osaka},
			{ID: "wsink", Kind: "sink", Sink: "discard"},
			{ID: "traffic", Kind: "source", Sensor: "traffic-1"},
			{ID: "cong", Kind: "aggregate", IntervalMS: 600_000, Func: "AVG", Attr: "congestion"},
			{ID: "csink", Kind: "sink", Sink: "discard"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "temp", To: "hot"}, {From: "hot", To: "tsink"},
			{From: "rain", To: "torr"}, {From: "torr", To: "rsink"},
			{From: "tweets", To: "cull"}, {From: "cull", To: "wsink"},
			{From: "traffic", To: "cong"}, {From: "cong", To: "csink"},
		},
	}
}

func osakaSensors() []sensor.Spec {
	return []sensor.Spec{
		{ID: "rain-1", Type: sensor.TypeRain, Location: geo.Point{Lat: 34.65, Lon: 135.43},
			NodeID: "node-00", Seed: 2, FrequencyHz: 1},
		{ID: "tweet-1", Type: sensor.TypeTweet, Location: geo.Point{Lat: 34.70, Lon: 135.50},
			NodeID: "node-01", Seed: 3, FrequencyHz: 2},
		{ID: "traffic-1", Type: sensor.TypeTraffic, Location: geo.Point{Lat: 34.68, Lon: 135.52},
			NodeID: "node-01", Seed: 4, FrequencyHz: 1},
	}
}

func BenchmarkFigure2_ValidateTranslate(b *testing.B) {
	rig := newBenchRig(b, 2, false, nil, 0, osakaSensors())
	spec := osakaSpec()
	resolver := dataflow.ResolverFunc(func(id string) (*stt.Schema, bool) {
		if meta, ok := rig.broker.Get(id); ok {
			return meta.Schema, true
		}
		return nil, false
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, diags := dataflow.Compile(spec, resolver, rig.broker, nil)
		if diags.HasErrors() {
			b.Fatal(diags)
		}
		doc, err := dsn.Translate(spec, plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dsn.Parse(doc.String()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2_SampleDebug(b *testing.B) {
	rig := newBenchRig(b, 2, false, nil, 0, osakaSensors())
	spec := osakaSpec()
	resolver := dataflow.ResolverFunc(func(id string) (*stt.Schema, bool) {
		if meta, ok := rig.broker.Get(id); ok {
			return meta.Schema, true
		}
		return nil, false
	})
	// 10 samples per source, as the design UI would request.
	samples := map[string][]*stt.Tuple{}
	for nodeID, sensorID := range map[string]string{
		"temp": "temp-1", "rain": "rain-1", "tweets": "tweet-1", "traffic": "traffic-1",
	} {
		gen := rig.sensors[sensorID]
		var tuples []*stt.Tuple
		ts := benchT0
		for i := 0; i < 10; i++ {
			tuples = append(tuples, gen.At(ts))
			ts = ts.Add(gen.Period())
		}
		samples[nodeID] = tuples
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, diags := dataflow.Compile(spec, resolver, rig.broker, nil)
		if diags.HasErrors() {
			b.Fatal(diags)
		}
		if _, err := dataflow.Debug(plan, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E4 — Figure 3: monitoring overhead and statistics collection.
// ---------------------------------------------------------------------------

func BenchmarkFigure3_Monitor(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "monitor=off"
		if on {
			name = "monitor=on"
		}
		b.Run(name, func(b *testing.B) {
			rig := newBenchRig(b, 4, on, nil, 0, nil)
			replayBench(b, rig, pipelineSpec("mon", true))
		})
	}
}

func BenchmarkFigure3_Snapshot(b *testing.B) {
	rig := newBenchRig(b, 4, true, nil, 0, nil)
	d, err := rig.exec.Deploy(pipelineSpec("snap", true))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(benchT0, benchT0.Add(time.Hour)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rig.mon.Snapshot(benchT0, true)
	}
}

// ---------------------------------------------------------------------------
// E5 — the Osaka scenario end to end (one replayed day).
// ---------------------------------------------------------------------------

func BenchmarkScenario_Osaka(b *testing.B) {
	rig := newBenchRig(b, 4, true, network.Locality{}, 0, osakaSensors())
	spec := osakaSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := rig.exec.Deploy(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Run(benchT0, benchT0.AddDate(0, 0, 1)); err != nil {
			b.Fatal(err)
		}
		d.Undeploy()
		// Reset activations for the next iteration.
		for _, id := range []string{"rain-1", "tweet-1", "traffic-1"} {
			_ = rig.broker.Deactivate(id)
		}
	}
	b.StopTimer()
	// One day at 1 Hz temp + 1 Hz rain + 2 Hz tweets + 1 Hz traffic.
	b.ReportMetric(float64(5*86400*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// ---------------------------------------------------------------------------
// E5b — warehouse ingest through a deployed dataflow: the executor→warehouse
// hot path, per-tuple Append vs the buffered AppendBatch sink.
// ---------------------------------------------------------------------------

// BenchmarkWarehouseIngest replays four 1 Hz sources for an event-time hour
// into warehouse sinks. sink=per-tuple disables sink buffering (one shard
// lock round-trip per tuple); sink=batched is the default buffering path.
func BenchmarkWarehouseIngest(b *testing.B) {
	for _, mode := range []struct {
		name  string
		batch int
	}{
		{"sink=per-tuple", -1},
		{"sink=batched", 256},
	} {
		b.Run(mode.name, func(b *testing.B) {
			net, err := network.Star(network.TopologyConfig{
				Nodes: 4, Area: geo.Osaka, Capacity: 1000, BandwidthKbps: 1e9,
			})
			if err != nil {
				b.Fatal(err)
			}
			broker := pubsub.NewBroker("bench")
			sensors := map[string]*sensor.Sensor{}
			spec := &dataflow.Spec{Name: "ingest"}
			for i := 0; i < 4; i++ {
				id := fmt.Sprintf("temp-%d", i+1)
				s, err := sensor.New(sensor.Spec{
					ID: id, Type: sensor.TypeTemperature, Location: geo.OsakaCenter,
					NodeID: fmt.Sprintf("node-%02d", i), Seed: int64(i + 1), FrequencyHz: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				sensors[id] = s
				if err := broker.Publish(s.Meta()); err != nil {
					b.Fatal(err)
				}
				spec.Nodes = append(spec.Nodes,
					dataflow.NodeSpec{ID: fmt.Sprintf("src%d", i), Kind: "source", Sensor: id},
					dataflow.NodeSpec{ID: fmt.Sprintf("wh%d", i), Kind: "sink", Sink: "warehouse"},
				)
				spec.Edges = append(spec.Edges,
					dataflow.EdgeSpec{From: fmt.Sprintf("src%d", i), To: fmt.Sprintf("wh%d", i)})
			}
			wh := warehouse.New()
			exec, err := executor.New(executor.Config{
				Network: net, Broker: broker,
				Clock:     stream.NewVirtualClock(time.Unix(0, 0)),
				SinkBatch: mode.batch,
				Sensors: func(id string) (executor.SensorSource, bool) {
					s, ok := sensors[id]
					return s, ok
				},
				Sinks: func(kind, nodeID string, schema *stt.Schema) (executor.Sink, error) {
					return warehouse.Sink{W: wh}, nil
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := exec.Deploy(spec)
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Run(benchT0, benchT0.Add(time.Hour)); err != nil {
					b.Fatal(err)
				}
				d.Undeploy()
			}
			b.StopTimer()
			if wh.Len() != 4*3600*b.N {
				b.Fatalf("warehouse has %d events, want %d", wh.Len(), 4*3600*b.N)
			}
			b.ReportMetric(float64(4*3600*b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// ---------------------------------------------------------------------------
// E6 — P3: hot reconfiguration (stop -> swap -> resume) cycle time.
// ---------------------------------------------------------------------------

func BenchmarkP3_HotSwap(b *testing.B) {
	rig := newBenchRig(b, 2, false, nil, 0, nil)
	d, err := rig.exec.Deploy(pipelineSpec("swap", false))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(benchT0, benchT0.Add(time.Minute)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cond := "temperature > -100"
		if i%2 == 1 {
			cond = "temperature > -200"
		}
		if err := d.SwapOperator(dataflow.NodeSpec{ID: "f", Kind: "filter", Cond: cond}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// A1 — ablation: placement strategies.
// ---------------------------------------------------------------------------

func BenchmarkAblation_Placement(b *testing.B) {
	for _, name := range []string{"round-robin", "random", "least-loaded", "locality"} {
		b.Run(name, func(b *testing.B) {
			strat, err := network.NewStrategy(name, 42)
			if err != nil {
				b.Fatal(err)
			}
			rig := newBenchRig(b, 8, false, strat, 0, nil)
			// Four copies of the pipeline so strategies have room to differ.
			specs := make([]*dataflow.Spec, 4)
			for i := range specs {
				specs[i] = pipelineSpec(fmt.Sprintf("place%d", i), true)
			}
			var remoteTuples uint64
			var maxUtil float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var ds []*executor.Deployment
				for _, spec := range specs {
					d, err := rig.exec.Deploy(spec)
					if err != nil {
						b.Fatal(err)
					}
					ds = append(ds, d)
				}
				// Peak node utilization characterizes the balance quality.
				for _, u := range rig.net.Utilization() {
					if u > maxUtil {
						maxUtil = u
					}
				}
				for _, d := range ds {
					if err := d.Run(benchT0, benchT0.Add(time.Hour)); err != nil {
						b.Fatal(err)
					}
				}
				// Cross-node traffic characterizes the strategy; read it
				// before Undeploy releases the flows.
				for _, id := range rig.net.Flows() {
					tuples, _ := rig.net.TransferStats(id)
					remoteTuples += tuples
				}
				for _, d := range ds {
					d.Undeploy()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(specs)*3600*b.N)/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(remoteTuples)/float64(b.N), "xfer-tuples/op")
			b.ReportMetric(maxUtil*1000, "max-load-millis")
		})
	}
}

// ---------------------------------------------------------------------------
// A2 — ablation: blocking window interval t.
// ---------------------------------------------------------------------------

func BenchmarkAblation_Window(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	for _, interval := range []time.Duration{100 * time.Millisecond, time.Second, 10 * time.Second, time.Minute} {
		b.Run(fmt.Sprintf("t=%s", interval), func(b *testing.B) {
			runOpBench(b, tuples, func() ops.Operator {
				op, err := ops.NewAggregate("a", interval, []string{"station"},
					ops.AggAvg, "temperature", benchWeather)
				if err != nil {
					b.Fatal(err)
				}
				return op
			})
		})
	}
}

// ---------------------------------------------------------------------------
// A3 — ablation: stream buffer size.
// ---------------------------------------------------------------------------

func BenchmarkAblation_Buffer(b *testing.B) {
	for _, buffer := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("buffer=%d", buffer), func(b *testing.B) {
			rig := newBenchRig(b, 4, false, nil, buffer, nil)
			replayBench(b, rig, pipelineSpec("buf", false))
		})
	}
}

// ---------------------------------------------------------------------------
// A4 — ablation: cull reducing rate r.
// ---------------------------------------------------------------------------

func BenchmarkAblation_Cull(b *testing.B) {
	tuples := benchTuples(opBenchTuples)
	for _, rate := range []float64{0, 0.5, 0.9, 0.99} {
		b.Run(fmt.Sprintf("r=%v", rate), func(b *testing.B) {
			// Cull feeding an aggregation: downstream cost scales with 1-r.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cull, err := ops.NewCullSpace("c", rate, geo.Osaka, benchWeather)
				if err != nil {
					b.Fatal(err)
				}
				agg, err := ops.NewAggregate("a", time.Minute, nil, ops.AggAvg, "temperature", benchWeather)
				if err != nil {
					b.Fatal(err)
				}
				in := stream.New("in", benchWeather, 1024)
				mid := stream.New("mid", benchWeather, 1024)
				out := stream.New("out", agg.OutSchema(), 1024)
				go func() {
					for _, t := range tuples {
						in.Send(t)
					}
					in.Close()
				}()
				go cull.Run([]*stream.Stream{in}, mid)
				done := make(chan error, 1)
				go func() { done <- agg.Run([]*stream.Stream{mid}, out) }()
				out.Drain()
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(tuples)*b.N)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}
