// Flood: the emergency-management use case from the paper's motivation —
// reconciling heterogeneous physical sensors during a flood watch.
//
// Ingredients exercised here:
//
//   - Transform / unit reconciliation: the river gauge reports its level in
//     yards (the paper's own example), converted to meters on the fly;
//
//   - Virtual property: apparent temperature computed from temperature and
//     humidity (the paper's §2 example) after joining the two streams;
//
//   - Join: river level with rain rate every 10 minutes to correlate
//     rainfall with the river's response;
//
//   - Filter: flood alerts when the river exceeds 1.8 m while it rains;
//
//   - Sinks: alerts go to the Event Data Warehouse, the tweet stream feeds
//     the Sticker-style viz board for a trend heatmap.
//
//     go run ./examples/flood
package main

import (
	"fmt"
	"log"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/network"
	"streamloader/internal/ops"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
	"streamloader/internal/viz"
	"streamloader/internal/warehouse"
)

func main() {
	log.SetFlags(0)

	net, err := network.Tree(network.TopologyConfig{Nodes: 4, Area: geo.Osaka, Capacity: 100})
	if err != nil {
		log.Fatal(err)
	}
	broker := pubsub.NewBroker("flood")
	sensors := map[string]*sensor.Sensor{}
	for _, spec := range []sensor.Spec{
		{ID: "river-yodo", Type: sensor.TypeRiverLevel, Location: geo.Point{Lat: 34.72, Lon: 135.49},
			NodeID: "node-01", Seed: 11, UnitVariant: 1}, // variant 1: reports yards
		{ID: "rain-yodo", Type: sensor.TypeRain, Location: geo.Point{Lat: 34.72, Lon: 135.48},
			NodeID: "node-01", Seed: 11}, // same seed: correlated burst pattern
		{ID: "temp-center", Type: sensor.TypeTemperature, Location: geo.OsakaCenter,
			NodeID: "node-02", Seed: 13},
		{ID: "hum-center", Type: sensor.TypeHumidity, Location: geo.OsakaCenter,
			NodeID: "node-02", Seed: 14},
		{ID: "tweets-center", Type: sensor.TypeTweet, Location: geo.OsakaCenter,
			NodeID: "node-03", Seed: 15},
	} {
		s, err := sensor.New(spec)
		if err != nil {
			log.Fatal(err)
		}
		sensors[s.ID()] = s
		if err := broker.Publish(s.Meta()); err != nil {
			log.Fatal(err)
		}
	}

	spec := &dataflow.Spec{
		Name: "flood-watch",
		Nodes: []dataflow.NodeSpec{
			// River branch: yards -> meters, rename gauge field, and coarsen
			// the point-granularity gauge to the rain stream's district
			// granularity — without the coarsen step validation rejects the
			// join (STT consistency constraint).
			{ID: "river", Kind: "source", Sensor: "river-yodo"},
			{ID: "river_m", Kind: "transform", Steps: []ops.TransformStep{
				{Op: "convert_unit", Field: "level", ToUnit: "m"},
				{Op: "rename", Field: "gauge", NewName: "river_gauge"},
				{Op: "coarsen", SGran: "district"},
			}},

			// Rain branch.
			{ID: "rain", Kind: "source", Sensor: "rain-yodo"},

			// Correlate river level with rainfall every 10 minutes.
			{ID: "corr", Kind: "join", IntervalMS: 600_000,
				Predicate: "left.level > 1.8 && right.rain_rate > 0"},
			{ID: "alerts", Kind: "sink", Sink: "warehouse"},

			// Comfort branch: join temperature and humidity, derive the
			// paper's apparent-temperature virtual property.
			{ID: "temp", Kind: "source", Sensor: "temp-center"},
			{ID: "hum", Kind: "source", Sensor: "hum-center"},
			{ID: "weather", Kind: "join", IntervalMS: 60_000, Predicate: "true"},
			{ID: "apparent", Kind: "virtual_property", Property: "apparent_temp",
				Spec: "temperature + 0.33*(humidity/100*6.105*exp(17.27*temperature/(237.7+temperature))) - 4",
				Unit: "celsius"},
			{ID: "weather_wh", Kind: "sink", Sink: "warehouse"},

			// Social branch feeds the viz board.
			{ID: "tweets", Kind: "source", Sensor: "tweets-center"},
			{ID: "board", Kind: "sink", Sink: "viz"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "river", To: "river_m"},
			{From: "river_m", To: "corr", Port: 0},
			{From: "rain", To: "corr", Port: 1},
			{From: "corr", To: "alerts"},
			{From: "temp", To: "weather", Port: 0},
			{From: "hum", To: "weather", Port: 1},
			{From: "weather", To: "apparent"},
			{From: "apparent", To: "weather_wh"},
			{From: "tweets", To: "board"},
		},
	}

	wh := warehouse.New()
	board, err := viz.NewBoard(geo.Osaka, 30, 12, "")
	if err != nil {
		log.Fatal(err)
	}
	exec, err := executor.New(executor.Config{
		Network: net, Broker: broker, Strategy: network.Locality{},
		Clock: stream.NewVirtualClock(time.Unix(0, 0)),
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
		Sinks: func(kind, nodeID string, schema *stt.Schema) (executor.Sink, error) {
			if kind == "viz" {
				return board, nil
			}
			return warehouse.Sink{W: wh}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	d, err := exec.Deploy(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Undeploy()

	from := time.Date(2016, 6, 20, 0, 0, 0, 0, time.UTC) // rainy season
	if err := d.Run(from, from.AddDate(0, 0, 1)); err != nil {
		log.Fatal(err)
	}

	// Flood alerts: river above 1.8 m while raining.
	alerts, err := wh.Select(warehouse.Query{Cond: "level > 1.8"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flood alerts (river > 1.8 m while raining): %d\n", len(alerts))
	for i, ev := range alerts {
		if i >= 3 {
			fmt.Printf("  ... %d more\n", len(alerts)-3)
			break
		}
		fmt.Printf("  %s level=%.2fm rain=%.1fmm/h\n",
			ev.Tuple.Time.Format("15:04"),
			ev.Tuple.MustGet("level").AsFloat(),
			ev.Tuple.MustGet("rain_rate").AsFloat())
	}

	// Apparent temperature: hottest felt hour of the day.
	weather, err := wh.Select(warehouse.Query{Cond: "apparent_temp > 0"})
	if err != nil {
		log.Fatal(err)
	}
	var maxAT float64
	var maxWhen time.Time
	for _, ev := range weather {
		if at := ev.Tuple.MustGet("apparent_temp").AsFloat(); at > maxAT {
			maxAT = at
			maxWhen = ev.Tuple.Time
		}
	}
	fmt.Printf("\napparent temperature peaked at %.1f C around %s (%d joined readings)\n",
		maxAT, maxWhen.Format("15:04"), len(weather))

	// Social activity heatmap (Sticker substitute).
	fmt.Println("\ntweet activity heatmap:")
	fmt.Print(board.RenderASCII())
	fmt.Println("trending words:")
	for _, tp := range board.GlobalTopTopics(5) {
		fmt.Printf("  %-12s %d\n", tp.Word, tp.Count)
	}
}
