// Rebalance: the Figure 3 monitoring story — "the node that suffers because
// of high workload, which node is in charge of executing an operation and
// when the assignment changes".
//
// Three dataflows are deliberately pinned onto one small node of a
// four-node network; the workload-driven rebalancer then migrates blocking
// operations off the hot node, and the monitor's event log records every
// assignment change. Finally one dataflow's filter is hot-swapped (P3).
//
//	go run ./examples/rebalance
package main

import (
	"fmt"
	"log"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
)

// pinned forces every service onto one node, manufacturing the hot spot.
type pinned struct{ node string }

func (p *pinned) Name() string { return "pinned" }
func (p *pinned) Place(svc network.ServiceInfo, net *network.Network) (string, error) {
	if err := net.AddLoad(p.node, svc.Weight); err != nil {
		return "", err
	}
	return p.node, nil
}

func main() {
	log.SetFlags(0)

	net, err := network.Star(network.TopologyConfig{
		Nodes: 4, Area: geo.Osaka, Capacity: 20, // small nodes: load shows
	})
	if err != nil {
		log.Fatal(err)
	}
	broker := pubsub.NewBroker("rebalance")
	sensors := map[string]*sensor.Sensor{}
	for i := 0; i < 3; i++ {
		s, err := sensor.New(sensor.Spec{
			ID:   fmt.Sprintf("temp-%d", i+1),
			Type: sensor.TypeTemperature, Location: geo.OsakaCenter,
			NodeID: "node-00", Seed: int64(i), FrequencyHz: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		sensors[s.ID()] = s
		if err := broker.Publish(s.Meta()); err != nil {
			log.Fatal(err)
		}
	}

	mon := monitor.New()
	exec, err := executor.New(executor.Config{
		Network: net, Broker: broker,
		Strategy: &pinned{node: "node-00"},
		Monitor:  mon,
		Clock:    stream.NewVirtualClock(time.Unix(0, 0)),
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three dataflows, each with a blocking aggregate (placement weight 3).
	var deployments []*executor.Deployment
	for i := 0; i < 3; i++ {
		spec := &dataflow.Spec{
			Name: fmt.Sprintf("flow-%d", i+1),
			Nodes: []dataflow.NodeSpec{
				{ID: fmt.Sprintf("src%d", i+1), Kind: "source", Sensor: fmt.Sprintf("temp-%d", i+1)},
				{ID: fmt.Sprintf("avg%d", i+1), Kind: "aggregate", IntervalMS: 10_000,
					Func: "AVG", Attr: "temperature"},
				{ID: fmt.Sprintf("out%d", i+1), Kind: "sink", Sink: "collect"},
			},
			Edges: []dataflow.EdgeSpec{
				{From: fmt.Sprintf("src%d", i+1), To: fmt.Sprintf("avg%d", i+1)},
				{From: fmt.Sprintf("avg%d", i+1), To: fmt.Sprintf("out%d", i+1)},
			},
		}
		d, err := exec.Deploy(spec)
		if err != nil {
			log.Fatal(err)
		}
		defer d.Undeploy()
		deployments = append(deployments, d)
	}

	printLoads := func(label string) {
		fmt.Printf("%s\n", label)
		util := net.Utilization()
		for _, id := range net.Nodes() {
			bar := ""
			for i := 0; i < int(util[id]*40); i++ {
				bar += "#"
			}
			fmt.Printf("  %-8s %5.0f%% %s\n", id, util[id]*100, bar)
		}
	}
	printLoads("all services pinned to node-00 (the suffering node):")

	// Rebalance until stable.
	at := time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)
	for round := 1; ; round++ {
		var moved int
		for _, d := range deployments {
			migs, err := d.Rebalance(at)
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range migs {
				fmt.Printf("  round %d: %s migrates %s -> %s\n", round, m.Op, m.From, m.To)
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	printLoads("after workload-driven reassignment:")

	// Everything still runs.
	from := time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)
	for _, d := range deployments {
		if err := d.Run(from, from.Add(time.Minute)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nper-flow output after one replayed minute:")
	for i, d := range deployments {
		fmt.Printf("  flow-%d: %d aggregates\n", i+1, len(d.Collected(fmt.Sprintf("out%d", i+1))))
	}

	// P3: hot-swap flow-1's aggregate to a 30s window.
	if err := deployments[0].SwapOperator(dataflow.NodeSpec{
		ID: "avg1", Kind: "aggregate", IntervalMS: 30_000, Func: "AVG", Attr: "temperature",
	}); err != nil {
		log.Fatal(err)
	}
	if err := deployments[0].Run(from, from.Add(2*time.Minute)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter swapping avg1 to a 30s window: %d aggregates total\n",
		len(deployments[0].Collected("out1")))

	fmt.Println("\nassignment-change log (Figure 3):")
	for _, ev := range mon.EventsOfKind(monitor.EventReassigned) {
		fmt.Printf("  %s\n", ev)
	}
}
