// Quickstart: the smallest end-to-end StreamLoader pipeline.
//
// It builds a two-node network, publishes one temperature sensor through the
// pub/sub layer, designs a three-node conceptual dataflow
// (source → filter → sink), validates it, translates it to DSN, deploys it,
// replays one hour of event time, and prints what arrived.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/network"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
)

func main() {
	log.SetFlags(0)

	// 1. The programmable network: two nodes over the Osaka area.
	net, err := network.Star(network.TopologyConfig{Nodes: 2, Area: geo.Osaka, Capacity: 100})
	if err != nil {
		log.Fatal(err)
	}

	// 2. One temperature sensor, published via publish/subscribe so the
	// dataflow can discover it.
	broker := pubsub.NewBroker("quickstart")
	temp, err := sensor.New(sensor.Spec{
		ID: "temp-osaka-1", Type: sensor.TypeTemperature,
		Location: geo.OsakaCenter, NodeID: "node-00", Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := broker.Publish(temp.Meta()); err != nil {
		log.Fatal(err)
	}

	// 3. The conceptual dataflow: keep readings above 20 C.
	spec := &dataflow.Spec{
		Name: "quickstart",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-osaka-1"},
			{ID: "warm", Kind: "filter", Cond: "temperature > 20"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "src", To: "warm"},
			{From: "warm", To: "out"},
		},
	}

	// 4. The executor: virtual clock = replay at full speed.
	exec, err := executor.New(executor.Config{
		Network: net,
		Broker:  broker,
		Clock:   stream.NewVirtualClock(time.Unix(0, 0)),
		Sensors: func(id string) (executor.SensorSource, bool) {
			if id == temp.ID() {
				return temp, true
			}
			return nil, false
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Deploy: validation, DSN translation and SCN configuration happen
	// here; an inconsistent dataflow is rejected with diagnostics.
	d, err := exec.Deploy(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Undeploy()
	fmt.Println("DSN translation:")
	fmt.Print(d.DSNText())
	fmt.Println("SCN configuration:")
	fmt.Print(d.SCNScript())

	// 6. Replay one hour of event time (noon, so the diurnal model is warm).
	from := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	if err := d.Run(from, from.Add(time.Hour)); err != nil {
		log.Fatal(err)
	}

	// 7. Inspect the sink.
	got := d.Collected("out")
	fmt.Printf("\n%d warm readings out of 60 generated:\n", len(got))
	for i, tup := range got {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(got)-5)
			break
		}
		fmt.Printf("  %s\n", tup)
	}
}
