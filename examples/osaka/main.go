// Osaka: the paper's demo scenario (Figure 2), end to end.
//
// "There are different sensors in the area of Osaka that produce data about
// the temperatures and levels of rains ... tweets and traffic information
// from the same area ... there is interest in acquiring the data about
// torrential rain, tweets and traffic only when the temperature identified
// in the last hour is above 25 °C."
//
// The dataflow:
//
//	temp source ──▶ trigger_on(1h, temperature>25, {rain,tweets,traffic}) ──▶ discard
//	rain source ──▶ filter(rain_rate>30 "torrential") ──▶ warehouse
//	tweet source ─▶ cull_space(Osaka, r=0.5) ──▶ warehouse
//	traffic source ▶ aggregate(10min avg congestion) ──▶ warehouse
//
// The rain/tweet/traffic sensors start deactivated; the trigger starts them
// when the hot hour is detected, and the Event Data Warehouse accumulates
// only data acquired after that.
//
//	go run ./examples/osaka
package main

import (
	"fmt"
	"log"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
	"streamloader/internal/warehouse"
)

func main() {
	log.SetFlags(0)

	net, err := network.Star(network.TopologyConfig{Nodes: 4, Area: geo.Osaka, Capacity: 100})
	if err != nil {
		log.Fatal(err)
	}
	broker := pubsub.NewBroker("osaka")
	sensors := map[string]*sensor.Sensor{}
	for _, spec := range []sensor.Spec{
		{ID: "temp-osaka", Type: sensor.TypeTemperature, Location: geo.OsakaCenter, NodeID: "node-00", Seed: 1},
		{ID: "rain-osaka", Type: sensor.TypeRain, Location: geo.Point{Lat: 34.65, Lon: 135.43}, NodeID: "node-01", Seed: 2},
		{ID: "tweets-osaka", Type: sensor.TypeTweet, Location: geo.Point{Lat: 34.70, Lon: 135.50}, NodeID: "node-02", Seed: 3},
		{ID: "traffic-osaka", Type: sensor.TypeTraffic, Location: geo.Point{Lat: 34.68, Lon: 135.52}, NodeID: "node-03", Seed: 4},
	} {
		s, err := sensor.New(spec)
		if err != nil {
			log.Fatal(err)
		}
		sensors[s.ID()] = s
		if err := broker.Publish(s.Meta()); err != nil {
			log.Fatal(err)
		}
	}

	spec := &dataflow.Spec{
		Name: "osaka-hot-hour",
		Nodes: []dataflow.NodeSpec{
			{ID: "temp", Kind: "source", Sensor: "temp-osaka"},
			{ID: "hot_hour", Kind: "trigger_on", IntervalMS: 3600_000,
				Cond:    "temperature > 25",
				Targets: []string{"rain-osaka", "tweets-osaka", "traffic-osaka"}},
			{ID: "temp_done", Kind: "sink", Sink: "discard"},

			{ID: "rain", Kind: "source", Sensor: "rain-osaka"},
			{ID: "torrential", Kind: "filter", Cond: "rain_rate > 30"},
			{ID: "rain_wh", Kind: "sink", Sink: "warehouse"},

			{ID: "tweets", Kind: "source", Sensor: "tweets-osaka"},
			{ID: "sample_area", Kind: "cull_space", Rate: 0.5, Area: &geo.Osaka},
			{ID: "tweet_wh", Kind: "sink", Sink: "warehouse"},

			{ID: "traffic", Kind: "source", Sensor: "traffic-osaka"},
			{ID: "congestion", Kind: "aggregate", IntervalMS: 600_000,
				Func: "AVG", Attr: "congestion"},
			{ID: "traffic_wh", Kind: "sink", Sink: "warehouse"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "temp", To: "hot_hour"},
			{From: "hot_hour", To: "temp_done"},
			{From: "rain", To: "torrential"},
			{From: "torrential", To: "rain_wh"},
			{From: "tweets", To: "sample_area"},
			{From: "sample_area", To: "tweet_wh"},
			{From: "traffic", To: "congestion"},
			{From: "congestion", To: "traffic_wh"},
		},
	}

	mon := monitor.New()
	wh := warehouse.New()
	exec, err := executor.New(executor.Config{
		Network:  net,
		Broker:   broker,
		Strategy: network.Locality{},
		Monitor:  mon,
		Clock:    stream.NewVirtualClock(time.Unix(0, 0)),
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
		Sinks: func(kind, nodeID string, schema *stt.Schema) (executor.Sink, error) {
			return warehouse.Sink{W: wh}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	d, err := exec.Deploy(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Undeploy()

	fmt.Println("Deployed. Gated sensors start deactivated:")
	for _, id := range []string{"rain-osaka", "tweets-osaka", "traffic-osaka"} {
		fmt.Printf("  %-14s active=%v\n", id, broker.IsActive(id))
	}

	// Replay a full day: the diurnal temperature model crosses 25 C in the
	// early afternoon, which fires the trigger and opens the gated streams.
	from := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	if err := d.Run(from, from.AddDate(0, 0, 1)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nAfter one replayed day:")
	for _, id := range []string{"rain-osaka", "tweets-osaka", "traffic-osaka"} {
		fmt.Printf("  %-14s active=%v\n", id, broker.IsActive(id))
	}
	var firstFire time.Time
	for _, f := range d.Fires() {
		if f.Fired {
			firstFire = f.WindowStart
			break
		}
	}
	fmt.Printf("\nTrigger first fired for the hour starting %s\n", firstFire.Format(time.RFC3339))

	stats := wh.Stats()
	fmt.Printf("Event Data Warehouse: %d events (%s .. %s)\n",
		stats.Events, stats.Earliest.Format("15:04"), stats.Latest.Format("15:04"))
	for theme, n := range stats.Themes {
		fmt.Printf("  theme %-10s %d events\n", theme, n)
	}

	// Nothing was acquired before the trigger fired.
	early, err := wh.Count(warehouse.Query{To: firstFire})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Events stored from before the trigger fired: %d\n", early)

	fmt.Println("\nPer-operation statistics (Figure 3):")
	rep := mon.Snapshot(time.Now(), false)
	for _, op := range rep.Ops {
		fmt.Printf("  %-12s node=%-8s in=%-7d out=%-7d dropped=%d\n",
			op.Name, op.Node, op.In, op.Out, op.Dropped)
	}
}
